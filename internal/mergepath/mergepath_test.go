package mergepath

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// sortedRun builds a sorted run of big-endian uint32 keys with a trailing
// sequence tag so stability can be checked.
func sortedRun(vals []uint32, width int, tagBase uint32) Run {
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	data := make([]byte, len(vals)*width)
	for i, v := range vals {
		binary.BigEndian.PutUint32(data[i*width:], v)
		if width >= 8 {
			binary.BigEndian.PutUint32(data[i*width+4:], tagBase+uint32(i))
		}
	}
	return Run{Data: data, Width: width}
}

func randVals(n int, mod uint32, rng *rand.Rand) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = rng.Uint32() % mod
	}
	return out
}

func keyAt(data []byte, width, i int) uint32 {
	return binary.BigEndian.Uint32(data[i*width:])
}

func checkSortedByKey(t *testing.T, data []byte, width int, ctx string) {
	t.Helper()
	n := len(data) / width
	for i := 1; i < n; i++ {
		if keyAt(data, width, i-1) > keyAt(data, width, i) {
			t.Fatalf("%s: out of order at %d", ctx, i)
		}
	}
}

// cmpKey compares only the first 4 bytes so tags do not affect order.
func cmpKey(a, b []byte) int { return bytes.Compare(a[:4], b[:4]) }

func TestMergeIntoBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := sortedRun(randVals(100, 50, rng), 8, 0)
	b := sortedRun(randVals(80, 50, rng), 8, 1000)
	dst := make([]byte, len(a.Data)+len(b.Data))
	MergeInto(dst, a, b, cmpKey)
	checkSortedByKey(t, dst, 8, "MergeInto")
	if len(dst)/8 != 180 {
		t.Fatal("row count wrong")
	}
}

func TestMergeIntoStability(t *testing.T) {
	// All keys equal: output must be all of a (tags < 1000) then all of b.
	a := sortedRun([]uint32{7, 7, 7}, 8, 0)
	b := sortedRun([]uint32{7, 7}, 8, 1000)
	dst := make([]byte, len(a.Data)+len(b.Data))
	MergeInto(dst, a, b, cmpKey)
	tags := make([]uint32, 5)
	for i := range tags {
		tags[i] = binary.BigEndian.Uint32(dst[i*8+4:])
	}
	want := []uint32{0, 1, 2, 1000, 1001}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("stability broken: tags %v", tags)
		}
	}
}

func TestMergeIntoEmptySides(t *testing.T) {
	a := sortedRun([]uint32{1, 2}, 4, 0)
	empty := Run{Width: 4}
	dst := make([]byte, len(a.Data))
	MergeInto(dst, a, empty, nil)
	if !bytes.Equal(dst, a.Data) {
		t.Fatal("merge with empty b should copy a")
	}
	MergeInto(dst, empty, a, nil)
	if !bytes.Equal(dst, a.Data) {
		t.Fatal("merge with empty a should copy b")
	}
}

func TestSplitPointInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := sortedRun(randVals(200, 40, rng), 4, 0)
	b := sortedRun(randVals(150, 40, rng), 4, 0)
	total := a.Len() + b.Len()
	for d := 0; d <= total; d += 7 {
		i, j := SplitPoint(a, b, d, nil)
		if i+j != d {
			t.Fatalf("d=%d: i+j=%d", d, i+j)
		}
		if i < 0 || i > a.Len() || j < 0 || j > b.Len() {
			t.Fatalf("d=%d: out of range i=%d j=%d", d, i, j)
		}
		// Stable split: a[i-1] <= b[j] and b[j-1] < a[i].
		if i > 0 && j < b.Len() && bytes.Compare(a.Row(i-1), b.Row(j)) > 0 {
			t.Fatalf("d=%d: a[%d-1] > b[%d]", d, i, j)
		}
		if j > 0 && i < a.Len() && bytes.Compare(b.Row(j-1), a.Row(i)) >= 0 {
			t.Fatalf("d=%d: b[%d-1] >= a[%d] (stability violated)", d, j, i)
		}
	}
}

func TestSplitPointConcatenatesToFullMerge(t *testing.T) {
	// Merging each partition independently must equal the full merge.
	rng := rand.New(rand.NewSource(43))
	a := sortedRun(randVals(333, 25, rng), 4, 0)
	b := sortedRun(randVals(77, 25, rng), 4, 0)
	total := a.Len() + b.Len()
	want := make([]byte, total*4)
	MergeInto(want, a, b, nil)

	for _, parts := range []int{2, 3, 7} {
		got := make([]byte, 0, total*4)
		pi, pj := 0, 0
		for p := 1; p <= parts; p++ {
			d := p * total / parts
			i, j := a.Len(), b.Len()
			if p < parts {
				i, j = SplitPoint(a, b, d, nil)
			}
			sub := make([]byte, (i-pi+j-pj)*4)
			MergeInto(sub,
				Run{Data: a.Data[pi*4 : i*4], Width: 4},
				Run{Data: b.Data[pj*4 : j*4], Width: 4}, nil)
			got = append(got, sub...)
			pi, pj = i, j
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("parts=%d: partitioned merge differs from full merge", parts)
		}
	}
}

func TestParallelMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, p := range []int{1, 2, 4, 8} {
		a := sortedRun(randVals(1000, 100, rng), 8, 0)
		b := sortedRun(randVals(900, 100, rng), 8, 100000)
		want := make([]byte, len(a.Data)+len(b.Data))
		MergeInto(want, a, b, cmpKey)
		got := make([]byte, len(want))
		ParallelMerge(got, a, b, cmpKey, p)
		if !bytes.Equal(got, want) {
			t.Fatalf("p=%d: parallel merge differs", p)
		}
	}
}

func TestCascadeMergeManyRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, numRuns := range []int{1, 2, 3, 5, 16, 17} {
		var runs []Run
		var all []uint32
		for r := 0; r < numRuns; r++ {
			vals := randVals(rng.Intn(500), 1000, rng)
			all = append(all, vals...)
			runs = append(runs, sortedRun(vals, 4, 0))
		}
		out := CascadeMerge(runs, nil, 4)
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		if out.Len() != len(all) {
			t.Fatalf("runs=%d: got %d rows, want %d", numRuns, out.Len(), len(all))
		}
		for i, v := range all {
			if keyAt(out.Data, 4, i) != v {
				t.Fatalf("runs=%d: row %d = %d, want %d", numRuns, i, keyAt(out.Data, 4, i), v)
			}
		}
	}
}

func TestCascadeMergeEmpty(t *testing.T) {
	out := CascadeMerge(nil, nil, 2)
	if out.Len() != 0 {
		t.Fatal("empty cascade should produce empty run")
	}
}

func TestKWayMergeMatchesCascade(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	var runs []Run
	total := 0
	for r := 0; r < 9; r++ {
		n := rng.Intn(300)
		runs = append(runs, sortedRun(randVals(n, 64, rng), 4, 0))
		total += n
	}
	dst := make([]byte, total*4)
	KWayMerge(dst, runs, nil)
	checkSortedByKey(t, dst, 4, "KWayMerge")

	want := CascadeMerge(runs, nil, 1)
	if !bytes.Equal(dst, want.Data) {
		t.Fatal("k-way merge differs from cascade merge")
	}
}

func TestKWayMergeStabilityAcrossRuns(t *testing.T) {
	a := sortedRun([]uint32{5, 5}, 8, 0)
	b := sortedRun([]uint32{5}, 8, 100)
	c := sortedRun([]uint32{5}, 8, 200)
	dst := make([]byte, 4*8)
	KWayMerge(dst, []Run{a, b, c}, cmpKey)
	want := []uint32{0, 1, 100, 200}
	for i, w := range want {
		if got := binary.BigEndian.Uint32(dst[i*8+4:]); got != w {
			t.Fatalf("tag %d = %d, want %d", i, got, w)
		}
	}
}

func TestKWayMergeEmptyRuns(t *testing.T) {
	dst := make([]byte, 2*4)
	KWayMerge(dst, []Run{{Width: 4}, sortedRun([]uint32{9, 1}, 4, 0), {Width: 4}}, nil)
	if keyAt(dst, 4, 0) != 1 || keyAt(dst, 4, 1) != 9 {
		t.Fatal("k-way with empty runs wrong")
	}
}

func TestQuickParallelMergeEqualsSort(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	f := func(na, nb uint16, mod uint8) bool {
		m := uint32(mod)%100 + 1
		av := randVals(int(na)%2000, m, rng)
		bv := randVals(int(nb)%2000, m, rng)
		a := sortedRun(av, 4, 0)
		b := sortedRun(bv, 4, 0)
		dst := make([]byte, len(a.Data)+len(b.Data))
		ParallelMerge(dst, a, b, nil, 4)
		all := append(append([]uint32(nil), av...), bv...)
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for i, v := range all {
			if keyAt(dst, 4, i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAccessors(t *testing.T) {
	r := Run{}
	if r.Len() != 0 {
		t.Fatal("zero run should have zero len")
	}
	r2 := sortedRun([]uint32{1, 2, 3}, 4, 0)
	if r2.Len() != 3 || keyAt(r2.Row(1), 4, 0) != 2 {
		t.Fatal("Run accessors broken")
	}
}
