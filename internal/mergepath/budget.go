package mergepath

// Budget-driven merge planning ("Implementing the Comparison-Based
// External Sort", Polyntsov et al.): an external merge's resident memory
// is fan-in × block bytes, so when a budget is in force the two knobs are
// derived from the remaining reservation instead of fixed constants —
// the block size when a run is written, the fan-in when runs are merged.
// Too-small answers thrash I/O, too-large answers blow the budget, so
// both planners clamp to floors that keep the merge making progress even
// when the budget is absurdly small.

const (
	// minFanIn is the merge's progress floor: below 2-way merging nothing
	// merges, and a 2-way cascade is the worst case the budget can force.
	minFanIn = 2
	// minBlockRows keeps spill blocks from degenerating into per-row I/O
	// under tiny budgets.
	minBlockRows = 16
	// blockBudgetShare divides the remaining budget when sizing one run's
	// spill block: a k-run merge holds ~k blocks resident, so each block
	// targets a small share of the budget rather than all of it.
	blockBudgetShare = 16
	// maxBlockBytes caps block growth under huge budgets; past ~1 MiB per
	// block, larger sequential reads stop paying.
	maxBlockBytes = 1 << 20
)

// PlanBlockRows picks the spill-block row count for a run about to be
// written, from the budget headroom remaining (bytes; may be negative
// under pressure) and the run's average row footprint (key row + payload
// row + heap share, bytes). maxRows is the unbudgeted default and upper
// bound. The result targets remaining/blockBudgetShare bytes per block,
// clamped to [minBlockRows, maxRows].
func PlanBlockRows(remaining, rowBytes int64, maxRows int) int {
	if rowBytes <= 0 {
		rowBytes = 1
	}
	target := remaining / blockBudgetShare
	if target > maxBlockBytes {
		target = maxBlockBytes
	}
	rows := int(target / rowBytes)
	if rows > maxRows {
		rows = maxRows
	}
	if rows < minBlockRows {
		rows = minBlockRows
	}
	return rows
}

// minHealthyBlockRows is the block size below which a multi-pass merge
// beats shrinking blocks further: a pass over blocks this small already
// pays more in per-block overhead (syscalls, header decode, code
// recompute) than a full extra read-write pass over healthy blocks would.
const minHealthyBlockRows = 512

// MergePlan is the resolved shape of one external merge pass: how many
// runs it may read at once and the block size each reader streams with.
// FanIn < the run count means intermediate passes must reduce the run
// count first (the multi-pass cascade the budget forces).
type MergePlan struct {
	FanIn     int
	BlockRows int
}

// PlanMerge sizes one external merge pass for k runs under the remaining
// budget (bytes), given the average row footprint, the unbudgeted block
// default maxRows, and buffers — the resident blocks held per run (1
// synchronous, 2 with read-ahead). It prefers cascading intermediate
// passes over healthy-sized blocks to thrashing tiny blocks: when the
// naive per-run share would push blocks below minHealthyBlockRows, the
// fan-in shrinks (forcing passes) before the block size does, and only a
// budget too small for even a 2-way merge of healthy blocks degrades the
// block size toward minBlockRows.
func PlanMerge(k int, remaining, rowBytes int64, maxRows, buffers int) MergePlan {
	if rowBytes <= 0 {
		rowBytes = 1
	}
	if buffers < 1 {
		buffers = 1
	}
	if maxRows < minBlockRows {
		maxRows = minBlockRows
	}
	healthy := min(maxRows, minHealthyBlockRows)
	healthyBytes := int64(healthy) * rowBytes * int64(buffers)

	// Fan-in at healthy blocks: how many runs can stream healthy-sized
	// blocks at once within the budget.
	f := PlanFanIn(k, remaining, healthyBytes)
	if f >= k {
		// Everything fits at healthy blocks — grow the blocks into the
		// spare headroom (up to the unbudgeted default) for larger reads.
		share := remaining / int64(k*buffers)
		if share > maxBlockBytes {
			share = maxBlockBytes
		}
		rows := int(share / rowBytes)
		if rows > maxRows {
			rows = maxRows
		}
		if rows < healthy {
			rows = healthy
		}
		return MergePlan{FanIn: k, BlockRows: rows}
	}
	// The budget forces passes. Keep blocks healthy unless even minFanIn
	// healthy blocks exceed the budget, in which case shrink the blocks as
	// the last resort (floored at minBlockRows).
	rows := healthy
	if remaining < int64(minFanIn)*healthyBytes {
		rows = int(remaining / int64(minFanIn*buffers) / rowBytes)
		if rows > healthy {
			rows = healthy
		}
		if rows < minBlockRows {
			rows = minBlockRows
		}
		f = PlanFanIn(k, remaining, int64(rows)*rowBytes*int64(buffers))
	}
	return MergePlan{FanIn: f, BlockRows: rows}
}

// BatchRuns splits n runs into contiguous batches of at most fanIn runs,
// returned as [start, end) index pairs. When the caller supplies per-run
// merge roles (the strategy planner's hints: dup-heavy, presorted, normal),
// a batch prefers to end where the role changes — merging like-role
// neighbors keeps the duplicate-run fast path and the presorted streak
// detection effective through intermediate passes — but only once the batch
// holds at least max(2, fanIn/2) runs, so role-alternating inputs cannot
// degrade the cascade into tiny batches. Batches stay contiguous regardless
// of role: the fan-in reducer relies on contiguity for its byte-identical
// tie ordering, so roles may only move the cut points, never reorder runs.
// With uniform roles (or a nil role func) the cuts land exactly every fanIn
// runs — the role-blind batching.
func BatchRuns(n, fanIn int, role func(i int) int) [][2]int {
	if n <= 0 {
		return nil
	}
	if fanIn < minFanIn {
		fanIn = minFanIn
	}
	minCut := max(2, fanIn/2)
	out := make([][2]int, 0, (n+fanIn-1)/fanIn)
	start := 0
	for i := 1; i <= n; i++ {
		size := i - start
		cut := i == n || size >= fanIn
		if !cut && role != nil && size >= minCut && role(i) != role(i-1) {
			cut = true
		}
		if cut {
			out = append(out, [2]int{start, i})
			start = i
		}
	}
	return out
}

// PlanFanIn picks how many of k runs one streaming merge pass may read at
// once: each run holds about blockBytes resident, so the fan-in is the
// remaining budget divided by the per-run block footprint, clamped to
// [minFanIn, k]. A fan-in below k forces intermediate merge passes that
// reduce the run count first — trading extra I/O for bounded memory,
// exactly the external-sort trade-off the budget encodes.
func PlanFanIn(k int, remaining, blockBytes int64) int {
	if k <= minFanIn {
		return max(k, minFanIn)
	}
	if blockBytes <= 0 {
		blockBytes = 1
	}
	f := int(remaining / blockBytes)
	if f > k {
		f = k
	}
	if f < minFanIn {
		f = minFanIn
	}
	return f
}
