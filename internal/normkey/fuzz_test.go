package normkey

import (
	"bytes"
	"math"
	"testing"

	"rowsort/internal/vector"
)

// fuzzTypes is every key type the encoder supports, indexed by the fuzzer's
// type-selector byte.
var fuzzTypes = []vector.Type{
	vector.Bool,
	vector.Int8, vector.Int16, vector.Int32, vector.Int64,
	vector.Uint8, vector.Uint16, vector.Uint32, vector.Uint64,
	vector.Float32, vector.Float64,
	vector.Varchar,
}

// fuzzValueVector builds a one-row vector of the given type. Numeric types
// reinterpret bits directly (so the fuzzer reaches NaN payloads, -0, both
// infinities and every sign pattern); Varchar stores s as-is.
func fuzzValueVector(typ vector.Type, bits uint64, s string, null bool) *vector.Vector {
	v := vector.New(typ, 1)
	if null {
		v.AppendNull()
		return v
	}
	switch typ {
	case vector.Bool:
		v.AppendBool(bits&1 == 1)
	case vector.Int8:
		v.AppendInt8(int8(bits))
	case vector.Int16:
		v.AppendInt16(int16(bits))
	case vector.Int32:
		v.AppendInt32(int32(bits))
	case vector.Int64:
		v.AppendInt64(int64(bits))
	case vector.Uint8:
		v.AppendUint8(uint8(bits))
	case vector.Uint16:
		v.AppendUint16(uint16(bits))
	case vector.Uint32:
		v.AppendUint32(uint32(bits))
	case vector.Uint64:
		v.AppendUint64(bits)
	case vector.Float32:
		v.AppendFloat32(math.Float32frombits(uint32(bits)))
	case vector.Float64:
		v.AppendFloat64(math.Float64frombits(bits))
	case vector.Varchar:
		v.AppendString(s)
	}
	return v
}

// cmpSign collapses a comparison result to -1, 0 or +1.
func cmpSign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	default:
		return 0
	}
}

// fuzzPlan derives a compression plan for the key from the fuzzer's
// selector and plan bits. Plans are deliberately arbitrary — not just what
// AnalyzeSample would pick — because the order contract must hold for any
// dictionary or skip prefix, sampled well or badly. Returns nil when the
// selected arm does not apply to the key's type.
func fuzzPlan(key SortKey, encSel uint8, planBits uint64, as, bs string) *Plan {
	col := ColumnPlan{Enc: EncFull}
	switch encSel % 4 {
	case 1: // dictionary (varchar only)
		if key.Type != vector.Varchar {
			return nil
		}
		// Candidate members drawn from the pair under test and fixed
		// probes, so exact hits, near misses and far escapes all occur.
		cands := []string{"", "a", "m", "zz", key.Collation.Apply(as), key.Collation.Apply(bs), key.Collation.Apply(as) + "0"}
		var vals []string
		for i, c := range cands {
			if planBits&(1<<i) != 0 {
				vals = append(vals, c)
			}
		}
		sortStrings(vals)
		vals = dedupSorted(vals)
		dict, err := NewDictionary(vals)
		if err != nil {
			return nil
		}
		col = ColumnPlan{Enc: EncDict, Dict: dict, Width: dict.Width()}
	case 2: // plain prefix truncation
		if key.Type == vector.Varchar {
			col = ColumnPlan{Enc: EncTrunc, Width: 1 + int(planBits%uint64(key.prefixLen()))}
		} else if w := key.Type.Width(); w >= 2 {
			col = ColumnPlan{Enc: EncTrunc, Width: 1 + int(planBits%uint64(w-1))}
		} else {
			return nil
		}
	case 3: // shared-prefix elision
		if key.Type == vector.Varchar {
			skip := key.Collation.Apply(as)
			if n := int(planBits % 8); n < len(skip) {
				skip = skip[:n]
			}
			if skip == "" {
				return nil
			}
			col = ColumnPlan{Enc: EncTrunc, Skip: skip, Width: 1 + int((planBits>>3)%4)}
		} else if w := key.Type.Width(); w >= 2 {
			var scratch [8]byte
			va := fuzzValueVector(key.Type, planBits, "", false)
			encodeValue(key, va, 0, scratch[:w])
			skip := 1 + int((planBits>>32)%uint64(w-1))
			kept := 1 + int((planBits>>40)%uint64(w-skip))
			col = ColumnPlan{Enc: EncTrunc, Skip: string(scratch[:skip]), Width: 1 + kept}
		} else {
			return nil
		}
	default:
		return nil
	}
	return &Plan{Cols: []ColumnPlan{col}}
}

// sortStrings is insertion sort, enough for the tiny fuzz dictionaries.
func sortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// FuzzNormKeyOrder checks the paper's central claim on arbitrary value
// pairs: the unsigned byte order of encoded normalized keys agrees with the
// semantic comparison of the values, across every type, ASC/DESC, NULLS
// FIRST/LAST, both collations, and every compressed encoding arm
// (dictionary with escape gaps, prefix truncation, shared-prefix elision).
// The sanctioned divergence is a lossy byte-tie: encoded keys may tie where
// the values differ only if the encoder flagged the chunk as needing a
// tie-break (EncodeStats.Ties) — for the uncompressed varchar arm that must
// moreover coincide with genuinely identical collated padded prefixes.
func FuzzNormKeyOrder(f *testing.F) {
	f.Add(uint8(4), uint8(0), uint8(0), uint64(5), uint64(1<<63), "", "", uint8(0), uint64(0))                                // int64 sign straddle
	f.Add(uint8(10), uint8(1), uint8(0), uint64(0), uint64(1)<<63, "", "", uint8(0), uint64(0))                               // float64 +0 vs -0, DESC
	f.Add(uint8(10), uint8(0), uint8(0), uint64(0x7FF8000000000001), uint64(0x7FF0000000000000), "", "", uint8(0), uint64(0)) // NaN vs +Inf
	f.Add(uint8(11), uint8(0), uint8(3), uint64(0), uint64(0), "abc", "abd", uint8(0), uint64(0))                             // varchar within prefix
	f.Add(uint8(11), uint8(16), uint8(1), uint64(0), uint64(0), "Aa", "aA", uint8(0), uint64(0))                              // nocase collation, 2-byte prefix
	f.Add(uint8(2), uint8(14), uint8(0), uint64(7), uint64(7), "", "", uint8(0), uint64(0))                                   // NULL vs non-NULL, NULLS LAST
	f.Add(uint8(11), uint8(0), uint8(7), uint64(0), uint64(0), "ca", "cb", uint8(1), uint64(0x3F))                            // dict: exact vs same-gap escape
	f.Add(uint8(11), uint8(1), uint8(7), uint64(0), uint64(0), "wa", "wz", uint8(1), uint64(0x2B))                            // dict DESC with top escape
	f.Add(uint8(4), uint8(0), uint8(0), uint64(300), uint64(301), "", "", uint8(2), uint64(2))                                // int64 plain trunc tie
	f.Add(uint8(11), uint8(0), uint8(9), uint64(0), uint64(0), "id-0001", "id-0002", uint8(3), uint64(3|8<<3))                // varchar skip elision
	f.Add(uint8(4), uint8(2), uint8(0), uint64(96), uint64(1<<50), "", "", uint8(3), uint64(96|6<<32|1<<40))                  // int64 skip with class-2 escape

	f.Fuzz(func(t *testing.T, typeSel, flags, prefix uint8, abits, bbits uint64, as, bs string, encSel uint8, planBits uint64) {
		typ := fuzzTypes[int(typeSel)%len(fuzzTypes)]
		key := SortKey{Type: typ}
		if flags&1 != 0 {
			key.Order = Descending
		}
		if flags&2 != 0 {
			key.Nulls = NullsLast
		}
		aNull, bNull := flags&4 != 0, flags&8 != 0
		if typ == vector.Varchar {
			if flags&16 != 0 {
				key.Collation = CollationNoCase
			}
			key.PrefixLen = 1 + int(prefix%16)
		}

		va := fuzzValueVector(typ, abits, as, aNull)
		vb := fuzzValueVector(typ, bbits, bs, bNull)

		plan := fuzzPlan(key, encSel, planBits, as, bs)
		enc, err := NewEncoderPlan([]SortKey{key}, plan)
		if err != nil {
			t.Fatalf("NewEncoderPlan(%+v, %+v): %v", key, plan, err)
		}
		ea := make([]byte, enc.Width())
		eb := make([]byte, enc.Width())
		sta, err := enc.EncodeChunk([]*vector.Vector{va}, ea, enc.Width(), 0)
		if err != nil {
			t.Fatalf("Encode a: %v", err)
		}
		stb, err := enc.EncodeChunk([]*vector.Vector{vb}, eb, enc.Width(), 0)
		if err != nil {
			t.Fatalf("Encode b: %v", err)
		}

		got := cmpSign(bytes.Compare(ea, eb))
		want := cmpSign(CompareValues(key, va, 0, vb, 0))
		if got == want {
			return
		}
		if got != 0 {
			// Encoded keys ordered one way, the oracle the other (or tied):
			// a hard violation of byte-comparability.
			t.Fatalf("key %+v plan %+v: bytes.Compare = %d but CompareValues = %d\na = % x (null=%v)\nb = % x (null=%v)",
				key, plan, got, want, ea, aNull, eb, bNull)
		}
		// A byte-tie with a semantic difference is legal only when the
		// encoder told the sorter a tie-break is needed — that flag is what
		// keeps lossy encodings correct end to end.
		if aNull || bNull {
			t.Fatalf("key %+v plan %+v: NULL mismatch ties: CompareValues = %d", key, plan, want)
		}
		if !sta.Ties && !stb.Ties {
			t.Fatalf("key %+v plan %+v: unreported lossy tie (oracle = %d)\na = % x\nb = % x", key, plan, want, ea, eb)
		}
		if plan == nil {
			// Uncompressed arm: the tie must be exactly varchar prefix
			// truncation with identical collated padded prefixes.
			if typ != vector.Varchar {
				t.Fatalf("key %+v: encoded keys tie but CompareValues = %d", key, want)
			}
			p := key.prefixLen()
			pa := prefixPad(key.Collation.Apply(as), p)
			pb := prefixPad(key.Collation.Apply(bs), p)
			if pa != pb {
				t.Fatalf("key %+v: encoded keys tie but collated prefixes differ: %q vs %q", key, pa, pb)
			}
		}
	})
}

// prefixPad truncates s to p bytes and zero-pads it to exactly p bytes,
// mirroring the encoder's Varchar layout.
func prefixPad(s string, p int) string {
	b := make([]byte, p)
	copy(b, s)
	return string(b)
}
