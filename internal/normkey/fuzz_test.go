package normkey

import (
	"bytes"
	"math"
	"testing"

	"rowsort/internal/vector"
)

// fuzzTypes is every key type the encoder supports, indexed by the fuzzer's
// type-selector byte.
var fuzzTypes = []vector.Type{
	vector.Bool,
	vector.Int8, vector.Int16, vector.Int32, vector.Int64,
	vector.Uint8, vector.Uint16, vector.Uint32, vector.Uint64,
	vector.Float32, vector.Float64,
	vector.Varchar,
}

// fuzzValueVector builds a one-row vector of the given type. Numeric types
// reinterpret bits directly (so the fuzzer reaches NaN payloads, -0, both
// infinities and every sign pattern); Varchar stores s as-is.
func fuzzValueVector(typ vector.Type, bits uint64, s string, null bool) *vector.Vector {
	v := vector.New(typ, 1)
	if null {
		v.AppendNull()
		return v
	}
	switch typ {
	case vector.Bool:
		v.AppendBool(bits&1 == 1)
	case vector.Int8:
		v.AppendInt8(int8(bits))
	case vector.Int16:
		v.AppendInt16(int16(bits))
	case vector.Int32:
		v.AppendInt32(int32(bits))
	case vector.Int64:
		v.AppendInt64(int64(bits))
	case vector.Uint8:
		v.AppendUint8(uint8(bits))
	case vector.Uint16:
		v.AppendUint16(uint16(bits))
	case vector.Uint32:
		v.AppendUint32(uint32(bits))
	case vector.Uint64:
		v.AppendUint64(bits)
	case vector.Float32:
		v.AppendFloat32(math.Float32frombits(uint32(bits)))
	case vector.Float64:
		v.AppendFloat64(math.Float64frombits(bits))
	case vector.Varchar:
		v.AppendString(s)
	}
	return v
}

// cmpSign collapses a comparison result to -1, 0 or +1.
func cmpSign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	default:
		return 0
	}
}

// FuzzNormKeyOrder checks the paper's central claim on arbitrary value
// pairs: the unsigned byte order of encoded normalized keys agrees with the
// semantic comparison of the values, across every type, ASC/DESC, NULLS
// FIRST/LAST and both collations. The one sanctioned divergence is Varchar
// prefix truncation: encoded keys may tie where the full strings differ,
// and then the collated prefixes must genuinely be byte-identical (that tie
// is what the sorter's tie-break comparator exists to resolve).
func FuzzNormKeyOrder(f *testing.F) {
	f.Add(uint8(4), uint8(0), uint8(0), uint64(5), uint64(1<<63), "", "")                                // int64 sign straddle
	f.Add(uint8(10), uint8(1), uint8(0), uint64(0), uint64(1)<<63, "", "")                               // float64 +0 vs -0, DESC
	f.Add(uint8(10), uint8(0), uint8(0), uint64(0x7FF8000000000001), uint64(0x7FF0000000000000), "", "") // NaN vs +Inf
	f.Add(uint8(11), uint8(0), uint8(3), uint64(0), uint64(0), "abc", "abd")                             // varchar within prefix
	f.Add(uint8(11), uint8(16), uint8(1), uint64(0), uint64(0), "Aa", "aA")                              // nocase collation, 2-byte prefix
	f.Add(uint8(2), uint8(14), uint8(0), uint64(7), uint64(7), "", "")                                   // NULL vs non-NULL, NULLS LAST

	f.Fuzz(func(t *testing.T, typeSel, flags, prefix uint8, abits, bbits uint64, as, bs string) {
		typ := fuzzTypes[int(typeSel)%len(fuzzTypes)]
		key := SortKey{Type: typ}
		if flags&1 != 0 {
			key.Order = Descending
		}
		if flags&2 != 0 {
			key.Nulls = NullsLast
		}
		aNull, bNull := flags&4 != 0, flags&8 != 0
		if typ == vector.Varchar {
			if flags&16 != 0 {
				key.Collation = CollationNoCase
			}
			key.PrefixLen = 1 + int(prefix%16)
		}

		va := fuzzValueVector(typ, abits, as, aNull)
		vb := fuzzValueVector(typ, bbits, bs, bNull)

		enc, err := NewEncoder([]SortKey{key})
		if err != nil {
			t.Fatalf("NewEncoder(%+v): %v", key, err)
		}
		ea := make([]byte, enc.Width())
		eb := make([]byte, enc.Width())
		if err := enc.Encode([]*vector.Vector{va}, ea, enc.Width(), 0); err != nil {
			t.Fatalf("Encode a: %v", err)
		}
		if err := enc.Encode([]*vector.Vector{vb}, eb, enc.Width(), 0); err != nil {
			t.Fatalf("Encode b: %v", err)
		}

		got := cmpSign(bytes.Compare(ea, eb))
		want := cmpSign(CompareValues(key, va, 0, vb, 0))
		if got == want {
			return
		}
		if got != 0 {
			// Encoded keys ordered one way, the oracle the other (or tied):
			// a hard violation of byte-comparability.
			t.Fatalf("key %+v: bytes.Compare = %d but CompareValues = %d\na = % x (null=%v)\nb = % x (null=%v)",
				key, got, want, ea, aNull, eb, bNull)
		}
		// Encoded tie with a semantic difference is legal only for Varchar
		// prefix truncation, and only when the collated prefixes really are
		// identical after zero padding.
		if typ != vector.Varchar || aNull || bNull {
			t.Fatalf("key %+v: encoded keys tie but CompareValues = %d", key, want)
		}
		p := key.prefixLen()
		pa := prefixPad(key.Collation.Apply(as), p)
		pb := prefixPad(key.Collation.Apply(bs), p)
		if pa != pb {
			t.Fatalf("key %+v: encoded keys tie but collated prefixes differ: %q vs %q", key, pa, pb)
		}
	})
}

// prefixPad truncates s to p bytes and zero-pads it to exactly p bytes,
// mirroring the encoder's Varchar layout.
func prefixPad(s string, p int) string {
	b := make([]byte, p)
	copy(b, s)
	return string(b)
}
