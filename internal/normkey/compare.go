package normkey

import (
	"strings"

	"rowsort/internal/vector"
)

// CompareRows compares tuple i of cols against tuple j under the key
// specification, returning -1, 0 or +1. cols[k] supplies the values of
// keys[k]. NULL ordering, DESC and the float total order (NaN greatest,
// -0 == +0) match the normalized key encoding, so for any two tuples
//
//	sign(CompareRows(keys, cols, i, j)) ==
//	sign(bytes.Compare(encode(tuple i), encode(tuple j)))
//
// whenever string keys fit their prefixes; with truncated prefixes the key
// comparison may report equality that CompareRows breaks. It is the
// reference ("oracle") comparator and also serves as the dynamic
// tuple-at-a-time comparator of an interpreted engine: one call per
// comparison, one type dispatch per key column.
//
//rowsort:pure
func CompareRows(keys []SortKey, cols []*vector.Vector, i, j int) int {
	for k, key := range keys {
		c := compareOne(key, cols[k], i, j)
		if c != 0 {
			return c
		}
	}
	return 0
}

func compareOne(key SortKey, col *vector.Vector, i, j int) int {
	return CompareValues(key, col, i, col, j)
}

// CompareValues compares row i of column a against row j of column b under
// one key; both columns must have the key's type. It backs both the
// same-table oracle comparison and cross-table comparisons such as the
// merge join's.
//
//rowsort:pure
func CompareValues(key SortKey, a *vector.Vector, i int, b *vector.Vector, j int) int {
	vi, vj := a.Valid(i), b.Valid(j)
	if !vi || !vj {
		if vi == vj {
			return 0 // both NULL
		}
		// One NULL: NULLS FIRST/LAST is an absolute placement, independent
		// of ASC/DESC, matching the encoder.
		less := !vi
		if key.Nulls == NullsLast {
			less = !less
		}
		if less {
			return -1
		}
		return 1
	}
	var c int
	switch key.Type {
	case vector.Bool:
		c = cmpBool(a.Bools()[i], b.Bools()[j])
	case vector.Int8:
		c = cmpOrdered(a.Int8s()[i], b.Int8s()[j])
	case vector.Int16:
		c = cmpOrdered(a.Int16s()[i], b.Int16s()[j])
	case vector.Int32:
		c = cmpOrdered(a.Int32s()[i], b.Int32s()[j])
	case vector.Int64:
		c = cmpOrdered(a.Int64s()[i], b.Int64s()[j])
	case vector.Uint8:
		c = cmpOrdered(a.Uint8s()[i], b.Uint8s()[j])
	case vector.Uint16:
		c = cmpOrdered(a.Uint16s()[i], b.Uint16s()[j])
	case vector.Uint32:
		c = cmpOrdered(a.Uint32s()[i], b.Uint32s()[j])
	case vector.Uint64:
		c = cmpOrdered(a.Uint64s()[i], b.Uint64s()[j])
	case vector.Float32:
		c = cmpFloat64(float64(a.Float32s()[i]), float64(b.Float32s()[j]))
	case vector.Float64:
		c = cmpFloat64(a.Float64s()[i], b.Float64s()[j])
	case vector.Varchar:
		c = strings.Compare(key.Collation.Apply(a.Strings()[i]), key.Collation.Apply(b.Strings()[j]))
	}
	if key.Order == Descending {
		c = -c
	}
	return c
}

func cmpBool(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	default:
		return 1
	}
}

func cmpOrdered[E int8 | int16 | int32 | int64 | uint8 | uint16 | uint32 | uint64](a, b E) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// cmpFloat64 is the total order matching the key encoding: -0 == +0 and NaN
// compares greater than everything including +Inf.
func cmpFloat64(a, b float64) int {
	an, bn := a != a, b != b
	switch {
	case an && bn:
		return 0
	case an:
		return 1
	case bn:
		return -1
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
