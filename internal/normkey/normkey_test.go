package normkey

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"rowsort/internal/vector"
)

// encodeTuples encodes all rows of cols under keys, one key row per tuple.
func encodeTuples(t *testing.T, keys []SortKey, cols []*vector.Vector) (*Encoder, []byte) {
	t.Helper()
	e, err := NewEncoder(keys)
	if err != nil {
		t.Fatal(err)
	}
	n := cols[0].Len()
	out := make([]byte, n*e.Width())
	if err := e.Encode(cols, out, e.Width(), 0); err != nil {
		t.Fatal(err)
	}
	return e, out
}

func keyRow(out []byte, width, i int) []byte { return out[i*width : (i+1)*width] }

// randomVector builds a vector of n random values of type t, with nulls at
// the given rate. Strings are short, NUL-free and within the prefix unless
// longStrings is set.
func randomVector(t vector.Type, n int, nullRate float64, longStrings bool, rng *rand.Rand) *vector.Vector {
	v := vector.New(t, n)
	letters := "abcdefghijklmnopqrstuvwxyz"
	for i := 0; i < n; i++ {
		if rng.Float64() < nullRate {
			v.AppendNull()
			continue
		}
		switch t {
		case vector.Bool:
			v.AppendBool(rng.Intn(2) == 1)
		case vector.Int8:
			v.AppendInt8(int8(rng.Uint32()))
		case vector.Int16:
			v.AppendInt16(int16(rng.Uint32()))
		case vector.Int32:
			v.AppendInt32(int32(rng.Uint32()))
		case vector.Int64:
			v.AppendInt64(int64(rng.Uint64()))
		case vector.Uint8:
			v.AppendUint8(uint8(rng.Uint32()))
		case vector.Uint16:
			v.AppendUint16(uint16(rng.Uint32()))
		case vector.Uint32:
			v.AppendUint32(rng.Uint32())
		case vector.Uint64:
			v.AppendUint64(rng.Uint64())
		case vector.Float32:
			v.AppendFloat32(pickFloat32(rng))
		case vector.Float64:
			v.AppendFloat64(pickFloat64(rng))
		case vector.Varchar:
			maxLen := 8
			if longStrings {
				maxLen = 30
			}
			l := rng.Intn(maxLen + 1)
			b := make([]byte, l)
			for j := range b {
				b[j] = letters[rng.Intn(3)] // few letters => many shared prefixes
			}
			v.AppendString(string(b))
		}
	}
	return v
}

func pickFloat32(rng *rand.Rand) float32 {
	switch rng.Intn(8) {
	case 0:
		return 0
	case 1:
		return float32(math.Copysign(0, -1))
	case 2:
		return float32(math.Inf(1))
	case 3:
		return float32(math.Inf(-1))
	case 4:
		return float32(math.NaN())
	default:
		return (rng.Float32() - 0.5) * 1e9
	}
}

func pickFloat64(rng *rand.Rand) float64 {
	switch rng.Intn(8) {
	case 0:
		return 0
	case 1:
		return math.Copysign(0, -1)
	case 2:
		return math.Inf(1)
	case 3:
		return math.Inf(-1)
	case 4:
		return math.NaN()
	default:
		return (rng.Float64() - 0.5) * 1e18
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

var fixedTypes = []vector.Type{
	vector.Bool, vector.Int8, vector.Int16, vector.Int32, vector.Int64,
	vector.Uint8, vector.Uint16, vector.Uint32, vector.Uint64,
	vector.Float32, vector.Float64,
}

func TestEncoderWidth(t *testing.T) {
	e, err := NewEncoder([]SortKey{
		{Type: vector.Int32},
		{Type: vector.Varchar},
		{Type: vector.Varchar, PrefixLen: 4},
		{Type: vector.Uint8},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := (1 + 4) + (1 + DefaultStringPrefixLen) + (1 + 4) + (1 + 1)
	if e.Width() != want {
		t.Fatalf("Width = %d, want %d", e.Width(), want)
	}
	if e.Offset(0) != 0 || e.Offset(1) != 5 || e.Offset(2) != 5+13 {
		t.Fatalf("offsets wrong: %d %d %d", e.Offset(0), e.Offset(1), e.Offset(2))
	}
	if !e.TiesPossible() {
		t.Fatal("varchar keys should make ties possible")
	}
	if len(e.Keys()) != 4 {
		t.Fatal("Keys() should return the spec")
	}
}

func TestNewEncoderErrors(t *testing.T) {
	if _, err := NewEncoder(nil); err == nil {
		t.Fatal("empty keys should error")
	}
	if _, err := NewEncoder([]SortKey{{Type: vector.Invalid}}); err == nil {
		t.Fatal("invalid type should error")
	}
}

func TestOrderPreservationPerType(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, typ := range fixedTypes {
		for _, order := range []Order{Ascending, Descending} {
			for _, nulls := range []NullOrder{NullsFirst, NullsLast} {
				keys := []SortKey{{Type: typ, Order: order, Nulls: nulls}}
				col := randomVector(typ, 200, 0.15, false, rng)
				cols := []*vector.Vector{col}
				e, out := encodeTuples(t, keys, cols)
				for trial := 0; trial < 500; trial++ {
					i, j := rng.Intn(200), rng.Intn(200)
					want := sign(CompareRows(keys, cols, i, j))
					got := sign(bytes.Compare(keyRow(out, e.Width(), i), keyRow(out, e.Width(), j)))
					if got != want {
						t.Fatalf("%v %v %v: rows %d(%v) vs %d(%v): key cmp %d, oracle %d",
							typ, order, nulls, i, col.Value(i), j, col.Value(j), got, want)
					}
				}
			}
		}
	}
}

func TestOrderPreservationMultiKey(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	keys := []SortKey{
		{Type: vector.Int16, Order: Descending, Nulls: NullsLast},
		{Type: vector.Float64, Order: Ascending, Nulls: NullsFirst},
		{Type: vector.Uint8, Order: Ascending, Nulls: NullsLast},
		{Type: vector.Varchar, Order: Descending, Nulls: NullsFirst, PrefixLen: 9},
	}
	const n = 300
	cols := []*vector.Vector{
		randomVector(vector.Int16, n, 0.2, false, rng),
		randomVector(vector.Float64, n, 0.2, false, rng),
		randomVector(vector.Uint8, n, 0.2, false, rng),
		randomVector(vector.Varchar, n, 0.2, false, rng), // short strings: exact
	}
	e, out := encodeTuples(t, keys, cols)
	for trial := 0; trial < 3000; trial++ {
		i, j := rng.Intn(n), rng.Intn(n)
		want := sign(CompareRows(keys, cols, i, j))
		got := sign(bytes.Compare(keyRow(out, e.Width(), i), keyRow(out, e.Width(), j)))
		if got != want {
			t.Fatalf("rows %d vs %d: key cmp %d, oracle %d", i, j, got, want)
		}
	}
}

func TestFixedWidthRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, typ := range fixedTypes {
		for _, order := range []Order{Ascending, Descending} {
			keys := []SortKey{{Type: typ, Order: order, Nulls: NullsLast}}
			col := randomVector(typ, 100, 0.2, false, rng)
			e, out := encodeTuples(t, keys, []*vector.Vector{col})
			for i := 0; i < col.Len(); i++ {
				got, err := e.DecodeValue(0, keyRow(out, e.Width(), i))
				if err != nil {
					t.Fatal(err)
				}
				want := col.Value(i)
				if want == nil {
					if got != nil {
						t.Fatalf("%v %v row %d: decoded %v, want NULL", typ, order, i, got)
					}
					continue
				}
				if !valuesEqual(typ, got, want) {
					t.Fatalf("%v %v row %d: decoded %v, want %v", typ, order, i, got, want)
				}
			}
		}
	}
}

// valuesEqual compares decoded values, treating NaN==NaN and -0==+0 (the
// encoder canonicalizes both).
func valuesEqual(typ vector.Type, got, want any) bool {
	switch typ {
	case vector.Float32:
		g, w := got.(float32), want.(float32)
		if g != g && w != w {
			return true
		}
		return g == w
	case vector.Float64:
		g, w := got.(float64), want.(float64)
		if g != g && w != w {
			return true
		}
		return g == w
	default:
		return got == want
	}
}

func TestIntegerBoundaries(t *testing.T) {
	v := vector.New(vector.Int32, 5)
	for _, x := range []int32{math.MinInt32, -1, 0, 1, math.MaxInt32} {
		v.AppendInt32(x)
	}
	keys := []SortKey{{Type: vector.Int32}}
	e, out := encodeTuples(t, keys, []*vector.Vector{v})
	for i := 1; i < 5; i++ {
		if bytes.Compare(keyRow(out, e.Width(), i-1), keyRow(out, e.Width(), i)) >= 0 {
			t.Fatalf("int32 boundary order broken at %d", i)
		}
	}
}

func TestFloatSpecialOrder(t *testing.T) {
	// -Inf < -1 < -0 == +0 < 1 < +Inf < NaN
	v := vector.New(vector.Float64, 7)
	v.AppendFloat64(math.Inf(-1))
	v.AppendFloat64(-1)
	v.AppendFloat64(math.Copysign(0, -1))
	v.AppendFloat64(0)
	v.AppendFloat64(1)
	v.AppendFloat64(math.Inf(1))
	v.AppendFloat64(math.NaN())
	keys := []SortKey{{Type: vector.Float64}}
	e, out := encodeTuples(t, keys, []*vector.Vector{v})
	for i := 1; i < 7; i++ {
		c := bytes.Compare(keyRow(out, e.Width(), i-1), keyRow(out, e.Width(), i))
		if i == 3 { // -0 vs +0 must encode equal
			if c != 0 {
				t.Fatal("-0 and +0 should encode identically")
			}
			continue
		}
		if c >= 0 {
			t.Fatalf("float special order broken at %d", i)
		}
	}
}

func TestNullPlacementAllCombinations(t *testing.T) {
	for _, order := range []Order{Ascending, Descending} {
		for _, nulls := range []NullOrder{NullsFirst, NullsLast} {
			v := vector.New(vector.Int32, 3)
			v.AppendInt32(1)
			v.AppendNull()
			v.AppendInt32(-5)
			keys := []SortKey{{Type: vector.Int32, Order: order, Nulls: nulls}}
			e, out := encodeTuples(t, keys, []*vector.Vector{v})
			nullKey := keyRow(out, e.Width(), 1)
			for _, i := range []int{0, 2} {
				c := bytes.Compare(nullKey, keyRow(out, e.Width(), i))
				if nulls == NullsFirst && c >= 0 {
					t.Fatalf("%v NULLS FIRST: null should sort before row %d", order, i)
				}
				if nulls == NullsLast && c <= 0 {
					t.Fatalf("%v NULLS LAST: null should sort after row %d", order, i)
				}
			}
		}
	}
}

func TestStringPrefixTruncationTies(t *testing.T) {
	v := vector.New(vector.Varchar, 3)
	v.AppendString("ABCDEFGHIJKLMNOP")  // same 12-byte prefix
	v.AppendString("ABCDEFGHIJKLZZZZ")  // same 12-byte prefix
	v.AppendString("ABCDEFGHIJKLMNOPQ") // same 12-byte prefix
	keys := []SortKey{{Type: vector.Varchar}}
	cols := []*vector.Vector{v}
	e, out := encodeTuples(t, keys, cols)
	if bytes.Compare(keyRow(out, e.Width(), 0), keyRow(out, e.Width(), 1)) != 0 {
		t.Fatal("truncated prefixes should encode equal")
	}
	if CompareRows(keys, cols, 0, 1) >= 0 {
		t.Fatal("oracle must break the tie: MNOP < ZZZZ")
	}
	if CompareRows(keys, cols, 0, 2) >= 0 {
		t.Fatal("oracle must break the tie: shorter prefix-equal string first")
	}
}

func TestStringNULByteTie(t *testing.T) {
	// "a" and "a\x00" share a padded prefix; the oracle must order them.
	v := vector.New(vector.Varchar, 2)
	v.AppendString("a")
	v.AppendString("a\x00")
	keys := []SortKey{{Type: vector.Varchar}}
	cols := []*vector.Vector{v}
	e, out := encodeTuples(t, keys, cols)
	if bytes.Compare(keyRow(out, e.Width(), 0), keyRow(out, e.Width(), 1)) != 0 {
		t.Fatal("NUL-padded prefixes should encode equal")
	}
	if CompareRows(keys, cols, 0, 1) >= 0 {
		t.Fatal(`"a" must order before "a\x00"`)
	}
}

func TestStringDescending(t *testing.T) {
	v := vector.New(vector.Varchar, 2)
	v.AppendString("APPLE")
	v.AppendString("BANANA")
	keys := []SortKey{{Type: vector.Varchar, Order: Descending}}
	e, out := encodeTuples(t, keys, []*vector.Vector{v})
	if bytes.Compare(keyRow(out, e.Width(), 0), keyRow(out, e.Width(), 1)) <= 0 {
		t.Fatal("DESC: BANANA should encode before APPLE")
	}
}

// TestFigure7 reproduces the paper's worked example: the customer table
// ordered by c_birth_country DESC, c_birth_year ASC.
func TestFigure7(t *testing.T) {
	country := vector.New(vector.Varchar, 2)
	country.AppendString("NETHERLANDS")
	country.AppendString("GERMANY")
	year := vector.New(vector.Int32, 2)
	year.AppendInt32(1992)
	year.AppendInt32(1924)
	keys := []SortKey{
		{Type: vector.Varchar, Order: Descending, PrefixLen: 11},
		{Column: 1, Type: vector.Int32, Order: Ascending},
	}
	cols := []*vector.Vector{country, year}
	e, out := encodeTuples(t, keys, cols)
	// DESC on country: NETHERLANDS > GERMANY, so the NETHERLANDS row
	// (row 0) must get the smaller key.
	if bytes.Compare(keyRow(out, e.Width(), 0), keyRow(out, e.Width(), 1)) >= 0 {
		t.Fatal("Figure 7: NETHERLANDS row should encode first under DESC")
	}
	// Round-trip the year through the encoding.
	got, err := e.DecodeValue(1, keyRow(out, e.Width(), 0))
	if err != nil || got.(int32) != 1992 {
		t.Fatalf("year round trip: %v %v", got, err)
	}
	// The country prefix decodes to the padded prefix (11 bytes).
	c, _ := e.DecodeValue(0, keyRow(out, e.Width(), 1))
	if c.(string) != "GERMANY" {
		t.Fatalf("country prefix = %q", c)
	}
}

func TestEncodeErrors(t *testing.T) {
	e, err := NewEncoder([]SortKey{{Type: vector.Int32}})
	if err != nil {
		t.Fatal(err)
	}
	i32 := vector.New(vector.Int32, 2)
	i32.AppendInt32(1)
	out := make([]byte, 64)

	if err := e.Encode(nil, out, e.Width(), 0); err == nil {
		t.Fatal("wrong column count should error")
	}
	u32 := vector.New(vector.Uint32, 1)
	u32.AppendUint32(1)
	if err := e.Encode([]*vector.Vector{u32}, out, e.Width(), 0); err == nil {
		t.Fatal("type mismatch should error")
	}
	if err := e.Encode([]*vector.Vector{i32}, out, 2, 0); err == nil {
		t.Fatal("stride too small should error")
	}
	if err := e.Encode([]*vector.Vector{i32}, make([]byte, 1), e.Width(), 0); err == nil {
		t.Fatal("short out should error")
	}
	two := vector.New(vector.Int32, 2)
	two.AppendInt32(1)
	two.AppendInt32(2)
	e2, _ := NewEncoder([]SortKey{{Type: vector.Int32}, {Type: vector.Int32}})
	if err := e2.Encode([]*vector.Vector{i32, two}, make([]byte, 128), e2.Width(), 0); err == nil {
		t.Fatal("ragged columns should error")
	}
}

func TestEncodeWithOffsetAndStride(t *testing.T) {
	// Keys embedded in wider rows at a nonzero offset must not clobber
	// surrounding bytes.
	v := vector.New(vector.Uint16, 2)
	v.AppendUint16(0x0102)
	v.AppendUint16(0x0304)
	e, err := NewEncoder([]SortKey{{Type: vector.Uint16}})
	if err != nil {
		t.Fatal(err)
	}
	const stride, offset = 8, 2
	out := bytes.Repeat([]byte{0xEE}, 2*stride)
	if err := e.Encode([]*vector.Vector{v}, out, stride, offset); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		row := out[r*stride : (r+1)*stride]
		if row[0] != 0xEE || row[1] != 0xEE || row[5] != 0xEE {
			t.Fatalf("row %d: surrounding bytes clobbered: %x", r, row)
		}
		if row[offset] != 0x01 {
			t.Fatalf("row %d: missing validity byte: %x", r, row)
		}
	}
	if !(out[offset+1] == 0x01 && out[offset+2] == 0x02) {
		t.Fatalf("value bytes wrong: %x", out[:stride])
	}
}

func TestDecodeValueErrors(t *testing.T) {
	e, _ := NewEncoder([]SortKey{{Type: vector.Int32}})
	if _, err := e.DecodeValue(5, make([]byte, e.Width())); err == nil {
		t.Fatal("out-of-range key index should error")
	}
}

func TestOrderAndNullOrderStrings(t *testing.T) {
	if Ascending.String() != "ASC" || Descending.String() != "DESC" {
		t.Fatal("Order.String broken")
	}
	if NullsFirst.String() != "NULLS FIRST" || NullsLast.String() != "NULLS LAST" {
		t.Fatal("NullOrder.String broken")
	}
}

func TestTiesImpossibleWithoutVarchar(t *testing.T) {
	e, _ := NewEncoder([]SortKey{{Type: vector.Int32}, {Type: vector.Float64}})
	if e.TiesPossible() {
		t.Fatal("no varchar keys: ties should be impossible")
	}
}
