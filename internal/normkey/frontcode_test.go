package normkey

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// fcRows builds n sorted rows of the given strides: a big-endian counter
// key (dense or duplicate-heavy) plus a distinct tail per row.
func fcRows(n, rowWidth, keyWidth, dupEvery int) []byte {
	keys := make([]byte, n*rowWidth)
	for i := 0; i < n; i++ {
		v := uint32(i)
		if dupEvery > 1 {
			v = uint32(i / dupEvery)
		}
		binary.BigEndian.PutUint32(keys[i*rowWidth:], v)
		for b := keyWidth; b < rowWidth; b++ {
			keys[i*rowWidth+b] = byte(i + b)
		}
	}
	return keys
}

func TestFrontCodeRoundTrip(t *testing.T) {
	cases := []struct {
		name               string
		n, rowW, keyW, dup int
	}{
		{"dense counter", 1000, 16, 8, 1},
		{"duplicate heavy", 1000, 16, 8, 16},
		{"single row", 1, 16, 8, 1},
		{"two rows", 2, 24, 12, 1},
		{"key fills row", 64, 8, 8, 4},
	}
	for _, c := range cases {
		keys := fcRows(c.n, c.rowW, c.keyW, c.dup)
		enc := AppendFrontCoded(nil, keys, c.rowW, c.keyW, c.n)
		dst := make([]byte, len(keys))
		if err := DecodeFrontCoded(dst, enc, c.rowW, c.keyW, c.n); err != nil {
			t.Fatalf("%s: decode: %v", c.name, err)
		}
		if !bytes.Equal(dst, keys) {
			t.Fatalf("%s: round trip mismatch", c.name)
		}
	}
}

func TestFrontCodeRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		n := 1 + rng.Intn(200)
		keyW := 1 + rng.Intn(20)
		rowW := keyW + rng.Intn(16)
		keys := make([]byte, n*rowW)
		for i := range keys {
			keys[i] = byte(rng.Intn(4)) // small alphabet: long shared prefixes
		}
		enc := AppendFrontCoded(nil, keys, rowW, keyW, n)
		dst := make([]byte, len(keys))
		if err := DecodeFrontCoded(dst, enc, rowW, keyW, n); err != nil {
			t.Fatalf("iter %d: decode: %v", iter, err)
		}
		if !bytes.Equal(dst, keys) {
			t.Fatalf("iter %d: round trip mismatch", iter)
		}
	}
}

func TestFrontCodeShrinksDuplicates(t *testing.T) {
	keys := fcRows(1024, 16, 8, 32)
	enc := AppendFrontCoded(nil, keys, 16, 8, 1024)
	if len(enc) >= len(keys) {
		t.Fatalf("duplicate-heavy block did not shrink: %d >= %d", len(enc), len(keys))
	}
	if ratio := PlanFrontCoding(keys, 16, 8, 1024); ratio >= 1 {
		t.Fatalf("plan predicted no saving on duplicate-heavy block: %.2f", ratio)
	}
}

func TestFrontCodePlanOnIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n, rowW, keyW := 512, 16, 8
	keys := make([]byte, n*rowW)
	for i := range keys {
		keys[i] = byte(rng.Intn(256))
	}
	// Random bytes share almost no prefixes: the predicted ratio must be
	// close to (1 row-overhead byte + full row) / row.
	if ratio := PlanFrontCoding(keys, rowW, keyW, n); ratio < 1 {
		t.Fatalf("plan predicted saving on random keys: %.2f", ratio)
	}
}

func TestFrontCodeDecodeRejectsCorrupt(t *testing.T) {
	keys := fcRows(100, 16, 8, 4)
	enc := AppendFrontCoded(nil, keys, 16, 8, 100)
	dst := make([]byte, len(keys))
	if err := DecodeFrontCoded(dst, enc[:len(enc)-3], 16, 8, 100); err == nil {
		t.Fatal("truncated input decoded without error")
	}
	if err := DecodeFrontCoded(dst, append(append([]byte(nil), enc...), 0), 16, 8, 100); err == nil {
		t.Fatal("oversized input decoded without error")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 9 // row 0 must have prefix length 0
	if err := DecodeFrontCoded(dst, bad, 16, 8, 100); err == nil {
		t.Fatal("invalid first-row prefix decoded without error")
	}
}
