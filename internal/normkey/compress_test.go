package normkey

import (
	"bytes"
	"fmt"
	"testing"

	"rowsort/internal/vector"
)

// stringsVec builds a varchar vector; "\x00NULL" entries become NULLs.
func stringsVec(vals ...string) *vector.Vector {
	v := vector.New(vector.Varchar, len(vals))
	for _, s := range vals {
		if s == "\x00NULL" {
			v.AppendNull()
		} else {
			v.AppendString(s)
		}
	}
	return v
}

func int64Vec(vals ...int64) *vector.Vector {
	v := vector.New(vector.Int64, len(vals))
	for _, x := range vals {
		v.AppendInt64(x)
	}
	return v
}

func TestDictionaryCodeOrder(t *testing.T) {
	dict, err := NewDictionary([]string{"ca", "ny", "tx", "wa"})
	if err != nil {
		t.Fatal(err)
	}
	if dict.Width() != 1 {
		t.Fatalf("Width = %d, want 1", dict.Width())
	}
	// Every probe, in and out of dictionary, in sorted order with the
	// expected gap codes interleaved.
	probes := []struct {
		s     string
		code  uint16
		exact bool
	}{
		{"", 0, false},
		{"az", 0, false},
		{"ca", 1, true},
		{"ca2", 2, false},
		{"mn", 2, false},
		{"ny", 3, true},
		{"or", 4, false},
		{"tx", 5, true},
		{"ut", 6, false},
		{"wa", 7, true},
		{"wy", 8, false},
	}
	for _, p := range probes {
		code, exact := dict.Code(p.s)
		if code != p.code || exact != p.exact {
			t.Errorf("Code(%q) = (%d, %v), want (%d, %v)", p.s, code, exact, p.code, p.exact)
		}
	}
	// Codes must order like the strings, with ties only between escapes.
	for i, a := range probes {
		for _, b := range probes[i+1:] {
			ca, ea := dict.Code(a.s)
			cb, eb := dict.Code(b.s)
			if ca > cb {
				t.Fatalf("Code(%q)=%d > Code(%q)=%d but %q < %q", a.s, ca, b.s, cb, a.s, b.s)
			}
			if ca == cb && (ea || eb) {
				t.Fatalf("Code(%q)=Code(%q)=%d with an exact member in the tie", a.s, b.s, ca)
			}
		}
	}
	if _, err := NewDictionary([]string{"b", "a"}); err == nil {
		t.Fatal("unsorted dictionary accepted")
	}
	if _, err := NewDictionary(nil); err == nil {
		t.Fatal("empty dictionary accepted")
	}
}

func TestDictionaryTwoByteWidth(t *testing.T) {
	vals := make([]string, 200)
	for i := range vals {
		vals[i] = fmt.Sprintf("v%08d", i)
	}
	dict, err := NewDictionary(vals)
	if err != nil {
		t.Fatal(err)
	}
	if dict.Width() != 2 {
		t.Fatalf("Width = %d, want 2 for %d entries", dict.Width(), len(vals))
	}
}

// repeatVec repeats each of vals enough times to clear the MinSample floor.
func repeatVec(reps int, vals ...string) *vector.Vector {
	v := vector.New(vector.Varchar, len(vals)*reps)
	for i := 0; i < reps; i++ {
		for _, s := range vals {
			v.AppendString(s)
		}
	}
	return v
}

func TestAnalyzeSampleDecisions(t *testing.T) {
	cfg := PlanConfig{Dict: true, Trunc: true}

	t.Run("lowcard varchar becomes dict", func(t *testing.T) {
		key := SortKey{Type: vector.Varchar}
		sample := [][]*vector.Vector{{repeatVec(40, "ca", "ny", "tx", "wa")}}
		plan, err := AnalyzeSample([]SortKey{key}, sample, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if plan == nil || plan.Cols[0].Enc != EncDict {
			t.Fatalf("plan = %+v, want dict", plan)
		}
		if plan.Cols[0].Width != 1 {
			t.Fatalf("dict width = %d, want 1", plan.Cols[0].Width)
		}
	})

	t.Run("shared-prefix varchar elides prefix", func(t *testing.T) {
		key := SortKey{Type: vector.Varchar}
		urls := make([]string, 128)
		for i := range urls {
			urls[i] = fmt.Sprintf("https://example.com/item/%06d", (i*7919)%1000000)
		}
		sample := [][]*vector.Vector{{stringsVec(urls...)}}
		plan, err := AnalyzeSample([]SortKey{key}, sample, PlanConfig{Trunc: true})
		if err != nil {
			t.Fatal(err)
		}
		cp := plan.Cols[0]
		if cp.Enc != EncTrunc || len(cp.Skip) == 0 {
			t.Fatalf("plan = %v, want skip-trunc", cp)
		}
		if cp.Skip != "https://example.com/item/" {
			t.Fatalf("Skip = %q", cp.Skip)
		}
		if cp.Width >= key.prefixLen() {
			t.Fatalf("Width %d does not beat full prefix %d", cp.Width, key.prefixLen())
		}
	})

	t.Run("small-domain int64 elides encoded prefix exactly", func(t *testing.T) {
		key := SortKey{Type: vector.Int64}
		v := vector.New(vector.Int64, 256)
		for i := 0; i < 256; i++ {
			v.AppendInt64(int64(i % 97))
		}
		plan, err := AnalyzeSample([]SortKey{key}, [][]*vector.Vector{{v}}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cp := plan.Cols[0]
		if cp.Enc != EncTrunc || len(cp.Skip) != 7 {
			t.Fatalf("plan = %v, want skip-trunc eliding 7 bytes", cp)
		}
		if !cp.exactSuffix(key) {
			t.Fatal("class-1 arm should be exact")
		}
	})

	t.Run("uniform int64 truncates to discriminating prefix", func(t *testing.T) {
		key := SortKey{Type: vector.Int64}
		v := vector.New(vector.Int64, 4096)
		x := int64(1)
		for i := 0; i < 4096; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			v.AppendInt64(x)
		}
		plan, err := AnalyzeSample([]SortKey{key}, [][]*vector.Vector{{v}}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cp := plan.Cols[0]
		if cp.Enc != EncTrunc || len(cp.Skip) != 0 {
			t.Fatalf("plan = %v, want plain trunc", cp)
		}
		// 4096 uniform samples: the closest adjacent pair shares ~3 bytes,
		// so the discriminating prefix plus margin lands at 4-5 of 8 bytes.
		if cp.Width > 5 {
			t.Fatalf("kept %d bytes of a uniform int64, want <= 5", cp.Width)
		}
	})

	t.Run("tiny sample stays full", func(t *testing.T) {
		key := SortKey{Type: vector.Varchar}
		sample := [][]*vector.Vector{{stringsVec("a", "b")}}
		plan, err := AnalyzeSample([]SortKey{key}, sample, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if plan != nil {
			t.Fatalf("plan = %+v, want nil", plan)
		}
	})

	t.Run("uint8 never compresses", func(t *testing.T) {
		key := SortKey{Type: vector.Uint8}
		v := vector.New(vector.Uint8, 128)
		for i := 0; i < 128; i++ {
			v.AppendUint8(uint8(i % 3))
		}
		plan, err := AnalyzeSample([]SortKey{key}, [][]*vector.Vector{{v}}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if plan != nil {
			t.Fatalf("plan = %+v, want nil", plan)
		}
	})
}

// checkPlanSound encodes every vector (each one row) under the plan and
// verifies the compressed-key contract against the oracle for every pair:
// byte order never inverts the semantic order, and any byte-tie between
// semantically unequal rows was flagged lossy by at least one side's
// EncodeStats (that flag is what arms the sorter's tie-break).
func checkPlanSound(t *testing.T, key SortKey, plan *Plan, vecs []*vector.Vector) {
	t.Helper()
	enc, err := NewEncoderPlan([]SortKey{key}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Width() > enc.FullWidth() {
		t.Fatalf("Width %d > FullWidth %d", enc.Width(), enc.FullWidth())
	}
	type encRow struct {
		b    []byte
		ties bool
	}
	rows := make([]encRow, len(vecs))
	for i, v := range vecs {
		b := make([]byte, enc.Width())
		st, err := enc.EncodeChunk([]*vector.Vector{v}, b, enc.Width(), 0)
		if err != nil {
			t.Fatal(err)
		}
		rows[i] = encRow{b, st.Ties}
	}
	for i := range vecs {
		for j := range vecs {
			got := cmpSign(bytes.Compare(rows[i].b, rows[j].b))
			want := cmpSign(CompareValues(key, vecs[i], 0, vecs[j], 0))
			if got == want {
				continue
			}
			if got != 0 {
				t.Fatalf("pair (%d,%d): bytes.Compare = %d but oracle = %d\nkey %+v\na = % x\nb = % x",
					i, j, got, want, key, rows[i].b, rows[j].b)
			}
			if !rows[i].ties && !rows[j].ties {
				t.Fatalf("pair (%d,%d): unreported lossy tie (oracle = %d)\nkey %+v\nbytes = % x",
					i, j, want, key, rows[i].b)
			}
		}
	}
}

// planVariants runs a soundness check across ASC/DESC and NULLS FIRST/LAST.
func planVariants(t *testing.T, base SortKey, plan *Plan, vecs []*vector.Vector) {
	t.Helper()
	for _, ord := range []Order{Ascending, Descending} {
		for _, nl := range []NullOrder{NullsFirst, NullsLast} {
			key := base
			key.Order, key.Nulls = ord, nl
			t.Run(fmt.Sprintf("%v-%v", ord, nl), func(t *testing.T) {
				checkPlanSound(t, key, plan, vecs)
			})
		}
	}
}

func TestDictEncodingSound(t *testing.T) {
	dict, err := NewDictionary([]string{"ca", "ny", "tx", "wa"})
	if err != nil {
		t.Fatal(err)
	}
	plan := &Plan{Cols: []ColumnPlan{{Enc: EncDict, Dict: dict, Width: 1}}}
	var vecs []*vector.Vector
	for _, s := range []string{"", "az", "ca", "cb", "mn", "mo", "ny", "nz", "tx", "wa", "wz", "\x00NULL"} {
		vecs = append(vecs, stringsVec(s))
	}
	planVariants(t, SortKey{Type: vector.Varchar}, plan, vecs)
}

func TestTruncVarcharSound(t *testing.T) {
	t.Run("plain", func(t *testing.T) {
		plan := &Plan{Cols: []ColumnPlan{{Enc: EncTrunc, Width: 3}}}
		var vecs []*vector.Vector
		for _, s := range []string{"", "a", "ab", "abc", "abcd", "abce", "abd", "ab\x00x", "b", "\x00NULL"} {
			vecs = append(vecs, stringsVec(s))
		}
		planVariants(t, SortKey{Type: vector.Varchar}, plan, vecs)
	})
	t.Run("skip", func(t *testing.T) {
		plan := &Plan{Cols: []ColumnPlan{{Enc: EncTrunc, Skip: "id-", Width: 1 + 2}}}
		var vecs []*vector.Vector
		for _, s := range []string{"", "a", "id", "id-", "id-0", "id-00", "id-0001", "id-0002", "id-01", "id-zz", "id.", "zz", "\x00NULL"} {
			vecs = append(vecs, stringsVec(s))
		}
		planVariants(t, SortKey{Type: vector.Varchar}, plan, vecs)
	})
	t.Run("skip collated", func(t *testing.T) {
		plan := &Plan{Cols: []ColumnPlan{{Enc: EncTrunc, Skip: "id-", Width: 1 + 2}}}
		var vecs []*vector.Vector
		for _, s := range []string{"ID-7", "id-7", "Id-8", "IA", "JA", "\x00NULL"} {
			vecs = append(vecs, stringsVec(s))
		}
		planVariants(t, SortKey{Type: vector.Varchar, Collation: CollationNoCase}, plan, vecs)
	})
}

func TestTruncFixedSound(t *testing.T) {
	vals := []int64{-1 << 62, -3, -1, 0, 1, 2, 3, 95, 96, 97, 1 << 40, 1<<62 + 1, 1<<62 + 2}
	var vecs []*vector.Vector
	for _, x := range vals {
		vecs = append(vecs, int64Vec(x))
	}
	nv := vector.New(vector.Int64, 1)
	nv.AppendNull()
	vecs = append(vecs, nv)

	t.Run("plain", func(t *testing.T) {
		plan := &Plan{Cols: []ColumnPlan{{Enc: EncTrunc, Width: 3}}}
		planVariants(t, SortKey{Type: vector.Int64}, plan, vecs)
	})
	t.Run("skip", func(t *testing.T) {
		// Skip the 7 leading bytes of the small-domain encodings; values
		// outside [0, 255] escape to classes 0 and 2.
		key := SortKey{Type: vector.Int64}
		skipV := int64Vec(0)
		var scratch [8]byte
		encodeValue(key, skipV, 0, scratch[:])
		plan := &Plan{Cols: []ColumnPlan{{Enc: EncTrunc, Skip: string(scratch[:7]), Width: 1 + 1}}}
		if !plan.Cols[0].exactSuffix(key) {
			t.Fatal("expected exact class-1 suffix")
		}
		planVariants(t, key, plan, vecs)
	})
}

func TestEncodeStatsReporting(t *testing.T) {
	dict, err := NewDictionary([]string{"ca", "ny", "tx", "wa"})
	if err != nil {
		t.Fatal(err)
	}
	plan := &Plan{Cols: []ColumnPlan{{Enc: EncDict, Dict: dict, Width: 1}}}
	enc, err := NewEncoderPlan([]SortKey{{Type: vector.Varchar}}, plan)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16*enc.Width())

	st, err := enc.EncodeChunk([]*vector.Vector{stringsVec("ca", "wa", "ny", "ny")}, buf, enc.Width(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ties || st.Escapes != 0 {
		t.Fatalf("exact-only chunk reported %+v", st)
	}

	st, err = enc.EncodeChunk([]*vector.Vector{stringsVec("ca", "oops", "zz")}, buf, enc.Width(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Ties || st.Escapes != 2 {
		t.Fatalf("escaping chunk reported %+v, want ties with 2 escapes", st)
	}

	// Exact-suffix fixed elision: in-range rows are lossless.
	key := SortKey{Type: vector.Int64}
	var scratch [8]byte
	encodeValue(key, int64Vec(0), 0, scratch[:])
	fp := &Plan{Cols: []ColumnPlan{{Enc: EncTrunc, Skip: string(scratch[:6]), Width: 1 + 2}}}
	fenc, err := NewEncoderPlan([]SortKey{key}, fp)
	if err != nil {
		t.Fatal(err)
	}
	fbuf := make([]byte, 8*fenc.Width())
	st, err = fenc.EncodeChunk([]*vector.Vector{int64Vec(1, 500, 65000)}, fbuf, fenc.Width(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ties || st.Escapes != 0 {
		t.Fatalf("in-range exact-suffix chunk reported %+v", st)
	}
	st, err = fenc.EncodeChunk([]*vector.Vector{int64Vec(1, -5, 1<<50)}, fbuf, fenc.Width(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Ties || st.Escapes != 2 {
		t.Fatalf("out-of-range chunk reported %+v, want ties with 2 escapes", st)
	}
}

func TestPlannedEncoderMatchesFullWhenInactive(t *testing.T) {
	keys := []SortKey{{Type: vector.Int32}, {Type: vector.Varchar, PrefixLen: 4}}
	full, err := NewEncoder(keys)
	if err != nil {
		t.Fatal(err)
	}
	planned, err := NewEncoderPlan(keys, &Plan{Cols: []ColumnPlan{{Enc: EncFull}, {Enc: EncFull}}})
	if err != nil {
		t.Fatal(err)
	}
	if planned.Width() != full.Width() || planned.FullWidth() != full.Width() {
		t.Fatalf("widths differ: %d/%d vs %d", planned.Width(), planned.FullWidth(), full.Width())
	}
	iv := vector.New(vector.Int32, 3)
	iv.AppendInt32(-7)
	iv.AppendNull()
	iv.AppendInt32(9)
	sv := stringsVec("abc", "abcdef", "z")
	a := make([]byte, 3*full.Width())
	b := make([]byte, 3*full.Width())
	if err := full.Encode([]*vector.Vector{iv, sv}, a, full.Width(), 0); err != nil {
		t.Fatal(err)
	}
	if err := planned.Encode([]*vector.Vector{iv, sv}, b, planned.Width(), 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("inactive plan changed the encoding")
	}
}
