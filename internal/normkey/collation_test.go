package normkey

import (
	"bytes"
	"math/rand"
	"testing"

	"rowsort/internal/vector"
)

func TestCollationApply(t *testing.T) {
	cases := map[string]string{
		"":        "",
		"abc":     "abc",
		"ABC":     "abc",
		"AbC12-z": "abc12-z",
	}
	for in, want := range cases {
		if got := CollationNoCase.Apply(in); got != want {
			t.Errorf("NoCase(%q) = %q, want %q", in, got, want)
		}
		if got := CollationBinary.Apply(in); got != in {
			t.Errorf("Binary(%q) = %q", in, got)
		}
	}
}

func TestNoCaseEncodingOrder(t *testing.T) {
	v := vector.New(vector.Varchar, 4)
	v.AppendString("apple")
	v.AppendString("APPLE")
	v.AppendString("Banana")
	v.AppendString("aPricot")
	keys := []SortKey{{Type: vector.Varchar, Collation: CollationNoCase}}
	e, out := encodeTuples(t, keys, []*vector.Vector{v})

	// apple and APPLE must encode identically.
	if !bytes.Equal(keyRow(out, e.Width(), 0), keyRow(out, e.Width(), 1)) {
		t.Fatal("case variants should encode equal under NOCASE")
	}
	// apple < aPricot < Banana under NOCASE.
	if bytes.Compare(keyRow(out, e.Width(), 0), keyRow(out, e.Width(), 3)) >= 0 {
		t.Fatal("apple should sort before aPricot")
	}
	if bytes.Compare(keyRow(out, e.Width(), 3), keyRow(out, e.Width(), 2)) >= 0 {
		t.Fatal("aPricot should sort before Banana")
	}
	// Binary collation orders them differently (uppercase first).
	binKeys := []SortKey{{Type: vector.Varchar}}
	be, bout := encodeTuples(t, binKeys, []*vector.Vector{v})
	if bytes.Compare(keyRow(bout, be.Width(), 2), keyRow(bout, be.Width(), 0)) >= 0 {
		t.Fatal("binary collation should put Banana before apple")
	}
}

func TestNoCaseCompareRowsAgreesWithEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	letters := "aAbBcC"
	v := vector.New(vector.Varchar, 200)
	for i := 0; i < 200; i++ {
		n := rng.Intn(6)
		b := make([]byte, n)
		for j := range b {
			b[j] = letters[rng.Intn(len(letters))]
		}
		v.AppendString(string(b))
	}
	keys := []SortKey{{Type: vector.Varchar, Collation: CollationNoCase}}
	cols := []*vector.Vector{v}
	e, out := encodeTuples(t, keys, cols)
	for trial := 0; trial < 2000; trial++ {
		i, j := rng.Intn(200), rng.Intn(200)
		want := sign(CompareRows(keys, cols, i, j))
		got := sign(bytes.Compare(keyRow(out, e.Width(), i), keyRow(out, e.Width(), j)))
		if got != want {
			t.Fatalf("rows %d(%q) vs %d(%q): key %d, oracle %d",
				i, v.Strings()[i], j, v.Strings()[j], got, want)
		}
	}
}
