// Compressed normalized keys (ROADMAP item 2, after Kwon et al.,
// "Compressed Key Sort and Fast Index Reconstruction"): a cheap ingest-time
// sample drives per-column encoding decisions that shrink the normalized key
// while preserving byte-wise order. Three encodings exist beyond the full
// encoding:
//
//   - Dictionary (varchar): the sorted distinct sample d_0 < … < d_{m-1}
//     maps to odd "exact" codes 2i+1; values outside the sample escape to
//     the even gap code between their neighbors (0 below d_0, 2i between
//     d_{i-1} and d_i, 2m above d_{m-1}). Exact codes order exactly; escaped
//     values order correctly against every exact value and tie only with
//     other escapes in the same gap, which the sorter's semantic tie-break
//     resolves. Odd codes never collide with even ones, so an exact value
//     never ties with anything unequal.
//
//   - Prefix truncation: the key keeps only the sampled discriminating
//     prefix of its order-preserving encoding. Dropping a suffix of an
//     order-preserving encoding is an order-preserving coarsening — unequal
//     values can only become ties, never inversions — so a full-key
//     tie-break makes it exact.
//
//   - Shared-prefix elision (a truncation variant): when every sampled
//     value starts with the same prefix P, the segment spends one class
//     byte (0: value < every P-prefixed string, 1: value starts with P,
//     2: value > every P-prefixed string) and then encodes the value with P
//     removed for class 1, or its leading bytes for the escape classes.
//     Class order is correct absolutely; within-class order is the usual
//     prefix coarsening.
//
// Every lossy possibility is reported per encoded chunk (EncodeStats) so
// the sorter enables its tie-break only for runs that need it.
package normkey

import (
	"fmt"
	"sort"
	"strings"

	"rowsort/internal/vector"
)

// ColumnEncoding identifies how one key column's segment is encoded.
type ColumnEncoding uint8

// The segment encodings.
const (
	// EncFull is the uncompressed encoding of normkey.go.
	EncFull ColumnEncoding = iota
	// EncDict encodes varchar values as order-preserving dictionary codes
	// with escape gaps for out-of-dictionary values.
	EncDict
	// EncTrunc keeps a discriminating prefix of the full encoding,
	// optionally eliding a sampled shared prefix first (Skip != "").
	EncTrunc
)

// String names the encoding.
func (e ColumnEncoding) String() string {
	switch e {
	case EncDict:
		return "dict"
	case EncTrunc:
		return "trunc"
	default:
		return "full"
	}
}

// MaxDictLen caps the number of dictionary entries a plan will build.
// 2*4096 codes still fit a two-byte segment with room to spare.
const MaxDictLen = 4096

// Dictionary is an order-preserving code assignment built from a sorted
// distinct sample of collated values.
type Dictionary struct {
	// Values holds the distinct sample, collated and ascending.
	Values []string
	width  int
}

// NewDictionary builds a dictionary from sorted distinct collated values.
func NewDictionary(values []string) (*Dictionary, error) {
	if len(values) == 0 || len(values) > MaxDictLen {
		return nil, fmt.Errorf("normkey: dictionary wants 1..%d values, got %d", MaxDictLen, len(values))
	}
	for i := 1; i < len(values); i++ {
		if values[i-1] >= values[i] {
			return nil, fmt.Errorf("normkey: dictionary values not sorted distinct at %d", i)
		}
	}
	w := 1
	if 2*len(values) > 0xFF {
		w = 2
	}
	return &Dictionary{Values: values, width: w}, nil
}

// Width returns the code width in bytes (1 or 2).
func (d *Dictionary) Width() int { return d.width }

// Code maps a collated value to its order-preserving code. exact reports
// whether s is a dictionary member; escaped codes may tie with other values
// in the same gap and need a semantic tie-break.
//
//rowsort:pure
//rowsort:hotpath
func (d *Dictionary) Code(s string) (code uint16, exact bool) {
	// Hand-rolled lower bound: first index with Values[i] >= s.
	lo, hi := 0, len(d.Values)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if d.Values[mid] < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(d.Values) && d.Values[lo] == s {
		return uint16(2*lo + 1), true
	}
	return uint16(2 * lo), false
}

// ColumnPlan is the sampled encoding decision for one key column.
type ColumnPlan struct {
	// Enc selects the segment encoding.
	Enc ColumnEncoding
	// Dict is the dictionary for EncDict columns.
	Dict *Dictionary
	// Skip is the sampled shared prefix elided by EncTrunc (collated
	// string bytes for varchar, full-encoding bytes for fixed types).
	// Empty means plain prefix truncation.
	Skip string
	// Width is the emitted value width in bytes, excluding the validity
	// byte but including the class byte when Skip is non-empty.
	Width int
}

// valueWidth returns the emitted value bytes for key k under this plan.
func (cp ColumnPlan) valueWidth(k SortKey) int {
	if cp.Enc == EncFull {
		return k.segWidth() - 1
	}
	return cp.Width
}

// canTie reports whether this column's segment may byte-tie between
// semantically unequal values. Full fixed-width segments cannot; everything
// lossy can. An EncTrunc fixed segment whose class-1 arm keeps the whole
// remaining encoding is exact for in-dictionary-range values, but escape
// classes may still tie, so it stays tie-capable.
func (cp ColumnPlan) canTie(k SortKey) bool {
	switch cp.Enc {
	case EncDict, EncTrunc:
		return true
	default:
		return k.Type == vector.Varchar
	}
}

// exactSuffix reports whether an EncTrunc fixed-type class-1 encoding keeps
// the entire remaining value encoding, making byte-equal class-1 segments
// semantically equal (the comparator may skip the tie-break for them).
func (cp ColumnPlan) exactSuffix(k SortKey) bool {
	if cp.Enc != EncTrunc || len(cp.Skip) == 0 || k.Type == vector.Varchar {
		return false
	}
	return len(cp.Skip)+(cp.Width-1) == k.Type.Width()
}

// String renders the decision for stats output.
func (cp ColumnPlan) String() string {
	switch cp.Enc {
	case EncDict:
		return fmt.Sprintf("dict(n=%d,w=%d)", len(cp.Dict.Values), cp.Dict.Width())
	case EncTrunc:
		if len(cp.Skip) > 0 {
			return fmt.Sprintf("trunc(skip=%d,keep=%d)", len(cp.Skip), cp.Width-1)
		}
		return fmt.Sprintf("trunc(keep=%d)", cp.Width)
	default:
		return "full"
	}
}

// Plan is a per-column compression decision set for one sort.
type Plan struct {
	// Cols aligns with the encoder's keys.
	Cols []ColumnPlan
}

// Active reports whether any column compresses.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	for _, c := range p.Cols {
		if c.Enc != EncFull {
			return true
		}
	}
	return false
}

// PlanConfig tunes AnalyzeSample.
type PlanConfig struct {
	// Dict enables dictionary encoding for varchar keys.
	Dict bool
	// Trunc enables prefix truncation / shared-prefix elision.
	Trunc bool
	// MaxDictLen caps dictionary entries; 0 means MaxDictLen.
	MaxDictLen int
	// MinSample is the fewest sampled non-NULL values a column needs
	// before any compression decision; 0 means 64.
	MinSample int
}

// truncMargin is the extra discriminating byte kept beyond what the sample
// strictly needs, insurance against out-of-sample near-collisions.
const truncMargin = 1

// AnalyzeSample inspects sampled key-column vectors and returns a
// compression plan. sample[k] holds vectors of key k's column; the plan
// aligns with keys. A nil plan (no error) means nothing compresses.
func AnalyzeSample(keys []SortKey, sample [][]*vector.Vector, cfg PlanConfig) (*Plan, error) {
	if len(sample) != len(keys) {
		return nil, fmt.Errorf("normkey: sample has %d columns for %d keys", len(sample), len(keys))
	}
	if cfg.MaxDictLen <= 0 || cfg.MaxDictLen > MaxDictLen {
		cfg.MaxDictLen = MaxDictLen
	}
	if cfg.MinSample <= 0 {
		cfg.MinSample = 64
	}
	plan := &Plan{Cols: make([]ColumnPlan, len(keys))}
	for i, k := range keys {
		vals, err := gatherSample(k, sample[i])
		if err != nil {
			return nil, err
		}
		plan.Cols[i] = planColumn(k, vals, cfg)
	}
	if !plan.Active() {
		return nil, nil
	}
	return plan, nil
}

// gatherSample collects the column's valid values in collated/encoded string
// form: collated strings for varchar, full big-endian encodings for fixed
// types (whose byte order equals value order, so string comparison of the
// gathered values is value comparison).
func gatherSample(k SortKey, vecs []*vector.Vector) ([]string, error) {
	var vals []string
	var scratch [8]byte
	for _, v := range vecs {
		if v.Type() != k.Type {
			return nil, fmt.Errorf("normkey: sample column is %v, key wants %v", v.Type(), k.Type)
		}
		for r := 0; r < v.Len(); r++ {
			if !v.Valid(r) {
				continue
			}
			if k.Type == vector.Varchar {
				vals = append(vals, k.Collation.Apply(v.Strings()[r]))
			} else {
				encodeValue(k, v, r, scratch[:k.Type.Width()])
				vals = append(vals, string(scratch[:k.Type.Width()]))
			}
		}
	}
	return vals, nil
}

// planColumn decides one column's encoding from its sorted sample.
func planColumn(k SortKey, vals []string, cfg PlanConfig) ColumnPlan {
	full := ColumnPlan{Enc: EncFull}
	if len(vals) < cfg.MinSample {
		return full
	}
	sort.Strings(vals)
	distinct := dedupSorted(vals)
	if len(distinct) == 0 {
		return full
	}
	if k.Type == vector.Varchar {
		return planVarchar(k, vals, distinct, cfg)
	}
	return planFixed(k, distinct, cfg)
}

// planVarchar prefers a dictionary when the sample is low-cardinality and
// falls back to truncation / shared-prefix elision.
func planVarchar(k SortKey, vals, distinct []string, cfg PlanConfig) ColumnPlan {
	p := k.prefixLen()
	if cfg.Dict && len(distinct) <= cfg.MaxDictLen && len(distinct) <= len(vals)/4 {
		if d, err := NewDictionary(distinct); err == nil && d.Width() < p {
			return ColumnPlan{Enc: EncDict, Dict: d, Width: d.Width()}
		}
	}
	if !cfg.Trunc {
		return ColumnPlan{Enc: EncFull}
	}
	shared := commonPrefixLen(distinct[0], distinct[len(distinct)-1])
	if shared >= 4 {
		kept := 0
		if len(distinct) > 1 {
			kept = discriminatingLen(distinct, shared) + truncMargin
		}
		if kept > p {
			kept = p
		}
		if 1+kept < p {
			return ColumnPlan{Enc: EncTrunc, Skip: distinct[0][:shared], Width: 1 + kept}
		}
	}
	if len(distinct) > 1 {
		kept := discriminatingLen(distinct, 0) + truncMargin
		if kept < p {
			return ColumnPlan{Enc: EncTrunc, Width: kept}
		}
	}
	return ColumnPlan{Enc: EncFull}
}

// planFixed picks between shared-prefix elision (exact for in-range values)
// and plain prefix truncation for a fixed-width key.
func planFixed(k SortKey, distinct []string, cfg PlanConfig) ColumnPlan {
	if !cfg.Trunc {
		return ColumnPlan{Enc: EncFull}
	}
	w := k.Type.Width()
	if w < 2 {
		return ColumnPlan{Enc: EncFull}
	}
	best := ColumnPlan{Enc: EncFull}
	bestW := w
	// Shared-prefix elision: one class byte, then the whole remaining
	// encoding — class-1 values stay exact.
	shared := commonPrefixLen(distinct[0], distinct[len(distinct)-1])
	if shared >= 2 && 1+(w-shared) < bestW {
		best = ColumnPlan{Enc: EncTrunc, Skip: distinct[0][:shared], Width: 1 + (w - shared)}
		bestW = best.Width
	}
	// Plain truncation: keep the sampled discriminating prefix. Ties are
	// possible for every pair that agrees on the prefix, so demand a
	// saving of at least two bytes.
	if len(distinct) > 1 {
		kept := discriminatingLen(distinct, 0) + truncMargin
		if kept <= w-2 && kept < bestW {
			best = ColumnPlan{Enc: EncTrunc, Width: kept}
		}
	}
	return best
}

// dedupSorted compacts a sorted slice in place and returns the distinct
// prefix.
func dedupSorted(vals []string) []string {
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || v != vals[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// commonPrefixLen returns the length of the longest common prefix of a and b.
func commonPrefixLen(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// discriminatingLen returns the fewest bytes (beyond a shared prefix of
// length skip) that distinguish every adjacent pair of the sorted distinct
// sample: max over pairs of their common-prefix length plus one.
func discriminatingLen(distinct []string, skip int) int {
	disc := 1
	for i := 1; i < len(distinct); i++ {
		c := commonPrefixLen(distinct[i-1][skip:], distinct[i][skip:]) + 1
		if c > disc {
			disc = c
		}
	}
	return disc
}

// compareBytesStr is bytes.Compare between a byte slice and the bytes of a
// string, without converting either.
//
//rowsort:pure
//rowsort:hotpath
func compareBytesStr(b []byte, s string) int {
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) < len(s):
		return -1
	case len(b) > len(s):
		return 1
	}
	return 0
}

// lossyString reports whether encoding s into kept zero-padded bytes can
// collide with a different string's encoding: s overflows the kept prefix,
// or contains a NUL that the zero padding cannot be distinguished from.
//
//rowsort:pure
//rowsort:hotpath
func lossyString(s string, kept int) bool {
	if len(s) > kept {
		return true
	}
	return strings.IndexByte(s, 0) >= 0
}
