package normkey

import "fmt"

// Spill-block key front coding: consecutive sorted key rows share long
// prefixes (duplicates, dictionary codes, shared-prefix elision leftovers,
// clustered values), so a spilled block can elide each row's shared leading
// key bytes against its predecessor. The encoding is block-local — row 0 is
// stored whole — so a block decodes with nothing but its own bytes, and the
// non-key tail of every row (payload reference, alignment padding) is kept
// raw so decoding is a straight copy. The strategy planner samples each run
// (and each intermediate merge generation re-samples per block) to decide
// when the coding pays; PlanFrontCoding is that sample.

// maxFrontCodePrefix is the largest shared-prefix length one byte encodes.
const maxFrontCodePrefix = 255

// sharedPrefixLen returns the length of a and b's common prefix, capped.
//
//rowsort:hotpath
//rowsort:pure
func sharedPrefixLen(a, b []byte, limit int) int {
	p := 0
	for p < limit && a[p] == b[p] {
		p++
	}
	return p
}

// PlanFrontCoding samples adjacent row pairs of a sorted block and returns
// the predicted encoded-to-raw size ratio (< 1 means the coding shrinks the
// block). keys holds n rows of stride rowWidth whose first keyWidth bytes
// are the compared key.
func PlanFrontCoding(keys []byte, rowWidth, keyWidth, n int) float64 {
	if n < 2 || keyWidth <= 0 || rowWidth <= 0 {
		return 1
	}
	const samplePairs = 16
	step := max(1, n/samplePairs)
	limit := min(keyWidth, maxFrontCodePrefix)
	pairs, shared := 0, 0
	for i := step; i < n; i += step {
		a := keys[(i-1)*rowWidth : (i-1)*rowWidth+keyWidth]
		b := keys[i*rowWidth : i*rowWidth+keyWidth]
		shared += sharedPrefixLen(a, b, limit)
		pairs++
	}
	if pairs == 0 {
		return 1
	}
	avg := float64(shared) / float64(pairs)
	perRow := 1 + (float64(keyWidth) - avg) + float64(rowWidth-keyWidth)
	return perRow / float64(rowWidth)
}

// AppendFrontCoded appends the front-coded encoding of n key rows to dst
// and returns the extended slice. Per row: one byte of shared-key-prefix
// length against the previous row, the remaining key bytes, then the raw
// non-key tail. The first row's prefix length is 0 (stored whole).
func AppendFrontCoded(dst, keys []byte, rowWidth, keyWidth, n int) []byte {
	limit := min(keyWidth, maxFrontCodePrefix)
	prev := []byte(nil)
	for i := 0; i < n; i++ {
		row := keys[i*rowWidth : (i+1)*rowWidth]
		p := 0
		if prev != nil {
			p = sharedPrefixLen(prev, row, limit)
		}
		dst = append(dst, byte(p))
		dst = append(dst, row[p:]...)
		prev = row
	}
	return dst
}

// DecodeFrontCoded decodes n front-coded rows from enc into dst, which must
// hold n*rowWidth bytes. It is the exact inverse of AppendFrontCoded and
// errors on truncated or oversized input.
func DecodeFrontCoded(dst, enc []byte, rowWidth, keyWidth, n int) error {
	pos := 0
	for i := 0; i < n; i++ {
		if pos >= len(enc) {
			return fmt.Errorf("normkey: front-coded block truncated at row %d", i)
		}
		p := int(enc[pos])
		pos++
		if p > keyWidth || (i == 0 && p != 0) {
			return fmt.Errorf("normkey: front-coded row %d has invalid prefix length %d", i, p)
		}
		rest := rowWidth - p
		if pos+rest > len(enc) {
			return fmt.Errorf("normkey: front-coded block truncated at row %d", i)
		}
		row := dst[i*rowWidth : (i+1)*rowWidth]
		if p > 0 {
			copy(row[:p], dst[(i-1)*rowWidth:(i-1)*rowWidth+p])
		}
		copy(row[p:], enc[pos:pos+rest])
		pos += rest
	}
	if pos != len(enc) {
		return fmt.Errorf("normkey: front-coded block has %d trailing bytes", len(enc)-pos)
	}
	return nil
}
