// Package normkey implements key normalization (Section VI-A of the paper):
// encoding a sequence of typed sort-key values into a single fixed-width,
// order-preserving binary string. Normalized keys let an interpreted engine
// compare whole tuples with one dynamic bytes.Compare call (the memcmp
// analog) — no per-column type interpretation, no function-call overhead —
// and, because byte-wise order equals sort order, they can be sorted by a
// byte-by-byte radix sort that performs no comparisons at all.
//
// Encoding rules, per key column:
//
//   - A leading validity byte encodes NULL ordering (NULLS FIRST/LAST).
//   - Unsigned integers are written big-endian.
//   - Signed integers are written big-endian with the sign bit flipped, so
//     negative values order before positive ones.
//   - Floats use the IEEE-754 total-order trick: flip all bits of negative
//     values, flip only the sign bit of non-negative values. NaN is
//     canonicalized to a positive quiet NaN (ordering after +Inf) and -0 is
//     normalized to +0.
//   - Strings contribute a fixed-length prefix, zero-padded; rows whose
//     prefixes tie must be resolved against the full strings (the sorter
//     does this through the row's payload reference).
//   - DESC inverts every byte of the column's segment; the validity byte is
//     chosen so the requested NULL placement survives the inversion.
package normkey

import (
	"fmt"
	"math"
	"strings"

	"rowsort/internal/vector"
)

// Order is a per-key sort direction.
type Order uint8

// Sort directions.
const (
	Ascending Order = iota
	Descending
)

// String returns "ASC" or "DESC".
func (o Order) String() string {
	if o == Descending {
		return "DESC"
	}
	return "ASC"
}

// NullOrder places NULLs before or after all values.
type NullOrder uint8

// NULL placements. The zero value, NullsFirst, matches the common default
// for ascending order.
const (
	NullsFirst NullOrder = iota
	NullsLast
)

// String returns "NULLS FIRST" or "NULLS LAST".
func (n NullOrder) String() string {
	if n == NullsLast {
		return "NULLS LAST"
	}
	return "NULLS FIRST"
}

// Collation selects the string comparison rule for a Varchar key. The
// paper notes that collations are handled by evaluating the collation
// before encoding the string prefix; the encoder does exactly that, and the
// oracle comparator and the sorter's tie-break apply the same rule.
type Collation uint8

// The supported collations.
const (
	// CollationBinary compares raw bytes (the default).
	CollationBinary Collation = iota
	// CollationNoCase compares ASCII case-insensitively.
	CollationNoCase
)

// Apply evaluates the collation on s, returning the string whose binary
// order equals s's collated order.
//
//rowsort:pure
func (c Collation) Apply(s string) string {
	if c != CollationNoCase {
		return s
	}
	// Lower-case ASCII; allocate only when needed.
	lower := -1
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			lower = i
			break
		}
	}
	if lower < 0 {
		return s
	}
	//rowsort:allow hotpathalloc allocates only when an upper-case byte forces a rewrite; all-lower strings return s untouched
	b := []byte(s)
	for i := lower; i < len(b); i++ {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	//rowsort:allow hotpathalloc the rewritten collated string must not alias the mutable scratch buffer
	return string(b)
}

// DefaultStringPrefixLen is the number of string bytes encoded into the
// normalized key when the caller does not choose one. The paper's
// implementation encodes at most 12 bytes, picked from string statistics.
const DefaultStringPrefixLen = 12

// SortKey describes one ORDER BY term.
type SortKey struct {
	// Column is the key's column index in the chunks handed to Encode.
	Column int
	// Type is the column's logical type.
	Type vector.Type
	// Order is ASC or DESC.
	Order Order
	// Nulls places NULLs first or last.
	Nulls NullOrder
	// PrefixLen bounds the encoded prefix of Varchar keys; 0 means
	// DefaultStringPrefixLen. Ignored for other types.
	PrefixLen int
	// Collation selects the comparison rule for Varchar keys.
	Collation Collation
}

// segWidth returns the key's segment width including the validity byte.
func (k SortKey) segWidth() int {
	if k.Type == vector.Varchar {
		p := k.PrefixLen
		if p <= 0 {
			p = DefaultStringPrefixLen
		}
		return 1 + p
	}
	return 1 + k.Type.Width()
}

func (k SortKey) prefixLen() int {
	if k.PrefixLen <= 0 {
		return DefaultStringPrefixLen
	}
	return k.PrefixLen
}

// Encoder turns tuples of key-column values into normalized keys. It is
// built once per sort (interpreting the type and order of each key exactly
// once) and then applied vector at a time, which is how a vectorized engine
// amortizes interpretation overhead. An encoder built with a compression
// Plan emits the planned per-column encodings instead of the full ones.
type Encoder struct {
	keys      []SortKey
	offsets   []int
	width     int
	fullWidth int
	canTie    bool
	plan      *Plan
}

// NewEncoder validates the key specification and returns an uncompressed
// encoder.
func NewEncoder(keys []SortKey) (*Encoder, error) {
	return NewEncoderPlan(keys, nil)
}

// NewEncoderPlan validates the key specification and returns an encoder
// applying the given compression plan. A nil plan (or one whose columns are
// all EncFull) reproduces the full encoding byte for byte.
func NewEncoderPlan(keys []SortKey, plan *Plan) (*Encoder, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("normkey: no sort keys")
	}
	if plan != nil && len(plan.Cols) != len(keys) {
		return nil, fmt.Errorf("normkey: plan has %d columns for %d keys", len(plan.Cols), len(keys))
	}
	e := &Encoder{keys: append([]SortKey(nil), keys...), plan: plan}
	for i, k := range e.keys {
		if !k.Type.IsValid() {
			return nil, fmt.Errorf("normkey: key %d has invalid type %v", i, k.Type)
		}
		cp := e.colPlan(i)
		if err := validateColPlan(k, cp, i); err != nil {
			return nil, err
		}
		e.offsets = append(e.offsets, e.width)
		e.width += 1 + cp.valueWidth(k)
		e.fullWidth += k.segWidth()
		if cp.canTie(k) {
			e.canTie = true
		}
	}
	return e, nil
}

// validateColPlan rejects plans the encoder cannot honor.
func validateColPlan(k SortKey, cp ColumnPlan, i int) error {
	switch cp.Enc {
	case EncFull:
		return nil
	case EncDict:
		if k.Type != vector.Varchar {
			return fmt.Errorf("normkey: key %d: dictionary encoding requires varchar, got %v", i, k.Type)
		}
		if cp.Dict == nil || cp.Width != cp.Dict.Width() {
			return fmt.Errorf("normkey: key %d: invalid dictionary plan", i)
		}
	case EncTrunc:
		// A lone class byte (width 1, skip set) is legal: it encodes a
		// sampled-constant column in two segment bytes.
		if cp.Width < 1 {
			return fmt.Errorf("normkey: key %d: truncation width %d too small", i, cp.Width)
		}
		if k.Type != vector.Varchar {
			w := k.Type.Width()
			if len(cp.Skip) >= w {
				return fmt.Errorf("normkey: key %d: skip %d covers whole %d-byte value", i, len(cp.Skip), w)
			}
			kept := cp.Width
			if len(cp.Skip) > 0 {
				kept = cp.Width - 1
			}
			if kept > w {
				return fmt.Errorf("normkey: key %d: truncation keeps %d of %d bytes", i, kept, w)
			}
		}
	default:
		return fmt.Errorf("normkey: key %d: unknown encoding %d", i, cp.Enc)
	}
	return nil
}

// colPlan returns key k's column plan (EncFull when no plan is set).
func (e *Encoder) colPlan(k int) ColumnPlan {
	if e.plan == nil {
		return ColumnPlan{Enc: EncFull}
	}
	return e.plan.Cols[k]
}

// Width returns the total normalized key width in bytes as emitted.
func (e *Encoder) Width() int { return e.width }

// FullWidth returns the uncompressed key width — what Width would be with
// no compression plan. The gap is the per-row key-byte saving.
func (e *Encoder) FullWidth() int { return e.fullWidth }

// Keys returns the encoder's key specification.
func (e *Encoder) Keys() []SortKey { return e.keys }

// Plan returns the encoder's compression plan, nil when uncompressed.
func (e *Encoder) Plan() *Plan { return e.plan }

// TiesPossible reports whether byte-equal normalized keys may belong to
// unequal tuples, requiring a tie-break against the original values: a
// string key's prefix may truncate, and every compressed encoding is
// potentially lossy.
func (e *Encoder) TiesPossible() bool { return e.canTie }

// SegCanTie reports whether key k's segment alone may byte-tie between
// unequal values.
func (e *Encoder) SegCanTie(k int) bool { return e.colPlan(k).canTie(e.keys[k]) }

// SegExactSuffix reports whether key k is a shared-prefix-elided fixed
// segment whose class-1 arm is exact (byte-equal class-1 segments are
// semantically equal).
func (e *Encoder) SegExactSuffix(k int) bool { return e.colPlan(k).exactSuffix(e.keys[k]) }

// Offset returns the byte offset of key k's segment within the key.
func (e *Encoder) Offset(k int) int { return e.offsets[k] }

// EncodeStats reports what one Encode call observed about lossiness.
type EncodeStats struct {
	// Ties is set when some encoded row could byte-tie with a different
	// value's encoding — the run holding these rows needs the semantic
	// tie-break.
	Ties bool
	// Escapes counts dictionary escapes and shared-prefix class-0/2
	// encodings (values the sample did not cover).
	Escapes int64
}

// Encode writes one normalized key per row into out. cols[i] supplies the
// values for keys[i]; all columns must share a length. Row r's key is
// written at out[r*stride+offset : +Width()]. Encoding proceeds one key
// column at a time over the whole vector — the vectorized, cache-friendly
// conversion of Figure 11.
func (e *Encoder) Encode(cols []*vector.Vector, out []byte, stride, offset int) error {
	_, err := e.EncodeChunk(cols, out, stride, offset)
	return err
}

// EncodeChunk is Encode returning per-chunk lossiness stats, letting the
// sorter enable its tie-break per run instead of per sort.
func (e *Encoder) EncodeChunk(cols []*vector.Vector, out []byte, stride, offset int) (EncodeStats, error) {
	var st EncodeStats
	if len(cols) != len(e.keys) {
		return st, fmt.Errorf("normkey: got %d columns for %d keys", len(cols), len(e.keys))
	}
	if stride < offset+e.width {
		return st, fmt.Errorf("normkey: stride %d too small for offset %d + width %d", stride, offset, e.width)
	}
	n := -1
	for i, c := range cols {
		if c.Type() != e.keys[i].Type {
			return st, fmt.Errorf("normkey: column %d is %v, key wants %v", i, c.Type(), e.keys[i].Type)
		}
		if n == -1 {
			n = c.Len()
		} else if c.Len() != n {
			return st, fmt.Errorf("normkey: column %d has %d rows, want %d", i, c.Len(), n)
		}
	}
	if len(out) < n*stride {
		return st, fmt.Errorf("normkey: out has %d bytes, need %d", len(out), n*stride)
	}
	for i, c := range cols {
		cs := e.encodeColumn(i, c, out, stride, offset)
		st.Ties = st.Ties || cs.Ties
		st.Escapes += cs.Escapes
	}
	return st, nil
}

// encodeColumn encodes all rows of key k from vec, reporting lossiness.
//
//rowsort:hotpath
//rowsort:keyencoder
func (e *Encoder) encodeColumn(k int, vec *vector.Vector, out []byte, stride, offset int) EncodeStats {
	key := e.keys[k]
	cp := e.colPlan(k)
	segOff := offset + e.offsets[k]
	segW := 1 + cp.valueWidth(key)
	n := vec.Len()

	// The validity byte is chosen in "pre-inversion" terms: if the column is
	// DESC the whole segment is inverted afterwards, which also swaps the
	// NULL placement, so the placement is pre-swapped here.
	effFirst := (key.Nulls == NullsFirst) != (key.Order == Descending)
	var nullByte, validByte byte
	if effFirst {
		nullByte, validByte = 0x00, 0x01
	} else {
		nullByte, validByte = 0x01, 0x00
	}

	var st EncodeStats
	for r := 0; r < n; r++ {
		seg := out[r*stride+segOff : r*stride+segOff+segW]
		if !vec.Valid(r) {
			seg[0] = nullByte
			for i := 1; i < segW; i++ {
				seg[i] = 0
			}
			continue
		}
		seg[0] = validByte
		switch cp.Enc {
		case EncDict:
			encodeDict(key, cp, vec, r, seg[1:], &st)
		case EncTrunc:
			encodeTrunc(key, cp, vec, r, seg[1:], &st)
		default:
			encodeValue(key, vec, r, seg[1:])
			if key.Type == vector.Varchar && !st.Ties {
				s := key.Collation.Apply(vec.Strings()[r])
				st.Ties = lossyString(s, key.prefixLen())
			}
		}
	}

	if key.Order == Descending {
		for r := 0; r < n; r++ {
			seg := out[r*stride+segOff : r*stride+segOff+segW]
			for i := range seg {
				seg[i] = ^seg[i]
			}
		}
	}
	return st
}

// encodeDict writes row r's order-preserving dictionary code into dst.
//
//rowsort:hotpath
//rowsort:keyencoder
func encodeDict(key SortKey, cp ColumnPlan, vec *vector.Vector, r int, dst []byte, st *EncodeStats) {
	s := key.Collation.Apply(vec.Strings()[r])
	code, exact := cp.Dict.Code(s)
	if !exact {
		// Escaped values share their gap code with every other value in
		// the same gap; the run needs the semantic tie-break.
		st.Escapes++
		st.Ties = true
	}
	if cp.Width == 1 {
		dst[0] = byte(code)
	} else {
		putU16(dst, code)
	}
}

// encodeTrunc writes row r's truncated encoding into dst: either a plain
// discriminating prefix of the full encoding, or (Skip set) a class byte
// followed by the encoding with the sampled shared prefix removed.
//
//rowsort:hotpath
//rowsort:keyencoder
func encodeTrunc(key SortKey, cp ColumnPlan, vec *vector.Vector, r int, dst []byte, st *EncodeStats) {
	if key.Type == vector.Varchar {
		s := key.Collation.Apply(vec.Strings()[r])
		if len(cp.Skip) == 0 {
			kept := cp.Width
			nc := copy(dst[:kept], s)
			for i := nc; i < kept; i++ {
				dst[i] = 0
			}
			if lossyString(s, kept) {
				st.Ties = true
			}
			return
		}
		kept := cp.Width - 1
		var part string
		switch {
		case strings.HasPrefix(s, cp.Skip):
			dst[0] = 1
			part = s[len(cp.Skip):]
		case s < cp.Skip:
			dst[0] = 0
			part = s
			st.Escapes++
		default:
			dst[0] = 2
			part = s
			st.Escapes++
		}
		nc := copy(dst[1:1+kept], part)
		for i := nc; i < kept; i++ {
			dst[1+i] = 0
		}
		if lossyString(part, kept) {
			st.Ties = true
		}
		return
	}

	var scratch [8]byte
	w := key.Type.Width()
	encodeValue(key, vec, r, scratch[:w])
	if len(cp.Skip) == 0 {
		copy(dst[:cp.Width], scratch[:cp.Width])
		// Any dropped suffix may have discriminated; the run must
		// tie-break.
		st.Ties = true
		return
	}
	skip := len(cp.Skip)
	kept := cp.Width - 1
	switch cmp := compareBytesStr(scratch[:skip], cp.Skip); {
	case cmp == 0:
		dst[0] = 1
		copy(dst[1:1+kept], scratch[skip:skip+kept])
		if skip+kept < w {
			st.Ties = true
		}
	case cmp < 0:
		dst[0] = 0
		copy(dst[1:1+kept], scratch[:kept])
		st.Escapes++
		if kept < w {
			st.Ties = true
		}
	default:
		dst[0] = 2
		copy(dst[1:1+kept], scratch[:kept])
		st.Escapes++
		if kept < w {
			st.Ties = true
		}
	}
}

// encodeValue writes the order-preserving encoding of row r into dst, which
// has the key's value width.
//
//rowsort:hotpath
//rowsort:keyencoder
func encodeValue(key SortKey, vec *vector.Vector, r int, dst []byte) {
	switch key.Type {
	case vector.Bool:
		if vec.Bools()[r] {
			dst[0] = 1
		} else {
			dst[0] = 0
		}
	case vector.Uint8:
		dst[0] = vec.Uint8s()[r]
	case vector.Uint16:
		putU16(dst, vec.Uint16s()[r])
	case vector.Uint32:
		putU32(dst, vec.Uint32s()[r])
	case vector.Uint64:
		putU64(dst, vec.Uint64s()[r])
	case vector.Int8:
		dst[0] = uint8(vec.Int8s()[r]) ^ 0x80
	case vector.Int16:
		putU16(dst, uint16(vec.Int16s()[r])^0x8000)
	case vector.Int32:
		putU32(dst, uint32(vec.Int32s()[r])^0x80000000)
	case vector.Int64:
		putU64(dst, uint64(vec.Int64s()[r])^0x8000000000000000)
	case vector.Float32:
		putU32(dst, encodeFloat32(vec.Float32s()[r]))
	case vector.Float64:
		putU64(dst, encodeFloat64(vec.Float64s()[r]))
	case vector.Varchar:
		s := key.Collation.Apply(vec.Strings()[r])
		p := key.prefixLen()
		nc := copy(dst[:p], s)
		for i := nc; i < p; i++ {
			dst[i] = 0
		}
	}
}

// OrdFixed maps the native little-endian bytes of a fixed-width value — the
// payload row format of package row — to a uint64 whose unsigned order is
// the value's ascending sort order: the integer form of encodeValue. The
// sorter's tie-break compares truncated fixed segments against the payload
// through it, without boxing the value. Varchar has no fixed encoding and
// returns 0; callers dispatch strings to the collated comparison instead.
//
//rowsort:pure
//rowsort:hotpath
func OrdFixed(typ vector.Type, raw []byte) uint64 {
	switch typ {
	case vector.Bool, vector.Uint8:
		return uint64(raw[0])
	case vector.Int8:
		return uint64(raw[0] ^ 0x80)
	case vector.Uint16:
		return uint64(leU16(raw))
	case vector.Int16:
		return uint64(leU16(raw) ^ 0x8000)
	case vector.Uint32:
		return uint64(leU32(raw))
	case vector.Int32:
		return uint64(leU32(raw) ^ 0x80000000)
	case vector.Uint64:
		return leU64(raw)
	case vector.Int64:
		return leU64(raw) ^ 0x8000000000000000
	case vector.Float32:
		return uint64(encodeFloat32(math.Float32frombits(leU32(raw))))
	case vector.Float64:
		return encodeFloat64(math.Float64frombits(leU64(raw)))
	}
	return 0
}

func leU16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// encodeFloat32 maps a float32 to a uint32 whose unsigned order equals the
// float's total order (with -0 == +0 and NaN greatest).
func encodeFloat32(f float32) uint32 {
	if f != f { // NaN: canonicalize above +Inf
		return 0xFFC00000
	}
	if f == 0 {
		f = 0 // normalize -0 to +0
	}
	bits := math.Float32bits(f)
	if bits&0x80000000 != 0 {
		return ^bits
	}
	return bits | 0x80000000
}

// encodeFloat64 is encodeFloat32 for float64.
func encodeFloat64(f float64) uint64 {
	if f != f {
		return 0xFFF8000000000000
	}
	if f == 0 {
		f = 0
	}
	bits := math.Float64bits(f)
	if bits&0x8000000000000000 != 0 {
		return ^bits
	}
	return bits | 0x8000000000000000
}

func putU16(b []byte, v uint16) {
	b[0] = byte(v >> 8)
	b[1] = byte(v)
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func putU64(b []byte, v uint64) {
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}

func getU16(b []byte) uint16 { return uint16(b[0])<<8 | uint16(b[1]) }

func getU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func getU64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}
