package normkey

import (
	"bytes"
	"testing"

	"rowsort/internal/vector"
	"rowsort/internal/workload"
)

func benchColumns(n int) []*vector.Vector {
	rng := workload.NewRNG(1)
	i32 := vector.New(vector.Int32, n)
	f64 := vector.New(vector.Float64, n)
	str := vector.New(vector.Varchar, n)
	for i := 0; i < n; i++ {
		i32.AppendInt32(int32(rng.Uint32()))
		f64.AppendFloat64(rng.Float64() * 1e6)
		str.AppendString(lastNamesSample[rng.Intn(len(lastNamesSample))])
	}
	return []*vector.Vector{i32, f64, str}
}

var lastNamesSample = []string{"Smith", "Johnson", "Garcia", "Nakamura", "Okafor", "Silva"}

// BenchmarkEncode measures vector-at-a-time key normalization — the
// conversion cost the paper argues is worth paying.
func BenchmarkEncode(b *testing.B) {
	const n = 1 << 14
	cols := benchColumns(n)
	enc, err := NewEncoder([]SortKey{
		{Type: vector.Int32},
		{Type: vector.Float64, Order: Descending},
		{Type: vector.Varchar, Nulls: NullsLast},
	})
	if err != nil {
		b.Fatal(err)
	}
	out := make([]byte, n*enc.Width())
	b.SetBytes(int64(len(out)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(cols, out, enc.Width(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompareKeysVsTuples contrasts one bytes.Compare on normalized
// keys with the dynamic per-column tuple comparison — the paper's central
// trade.
func BenchmarkCompareKeysVsTuples(b *testing.B) {
	const n = 1 << 12
	cols := benchColumns(n)
	keys := []SortKey{
		{Type: vector.Int32},
		{Type: vector.Float64},
		{Type: vector.Varchar},
	}
	enc, err := NewEncoder(keys)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]byte, n*enc.Width())
	if err := enc.Encode(cols, out, enc.Width(), 0); err != nil {
		b.Fatal(err)
	}
	w := enc.Width()

	b.Run("memcmp", func(b *testing.B) {
		b.ReportAllocs()
		sink := 0
		for i := 0; i < b.N; i++ {
			a := (i * 31) % n
			c := (i * 17) % n
			sink += bytes.Compare(out[a*w:(a+1)*w], out[c*w:(c+1)*w])
		}
		_ = sink
	})
	b.Run("tuple", func(b *testing.B) {
		b.ReportAllocs()
		sink := 0
		for i := 0; i < b.N; i++ {
			a := (i * 31) % n
			c := (i * 17) % n
			sink += CompareRows(keys, cols, a, c)
		}
		_ = sink
	})
}
