package normkey

import (
	"fmt"
	"math"
	"strings"

	"rowsort/internal/vector"
)

// DecodeValue decodes key k's segment of the normalized key row back into a
// Go value, returning nil for NULL. Varchar keys decode to their encoded
// prefix with trailing padding removed (the full string is not recoverable
// from the key; the sorter keeps it in the payload). DecodeValue exists for
// tests, debugging and the Figure 7 demonstration; the sort itself never
// decodes keys.
func (e *Encoder) DecodeValue(k int, keyRow []byte) (any, error) {
	if k < 0 || k >= len(e.keys) {
		return nil, fmt.Errorf("normkey: key index %d out of range", k)
	}
	key := e.keys[k]
	seg := keyRow[e.offsets[k] : e.offsets[k]+key.segWidth()]
	// Undo DESC inversion on a copy.
	if key.Order == Descending {
		cp := make([]byte, len(seg))
		for i, b := range seg {
			cp[i] = ^b
		}
		seg = cp
	}
	// Undoing the inversion restores the encoder's pre-inversion validity
	// byte, which uses the same swapped placement as the encoder.
	effFirst := (key.Nulls == NullsFirst) != (key.Order == Descending)
	var validByte byte
	if effFirst {
		validByte = 0x01
	} else {
		validByte = 0x00
	}
	if seg[0] != validByte {
		return nil, nil // NULL
	}
	v := seg[1:]
	switch key.Type {
	case vector.Bool:
		return v[0] != 0, nil
	case vector.Uint8:
		return v[0], nil
	case vector.Uint16:
		return getU16(v), nil
	case vector.Uint32:
		return getU32(v), nil
	case vector.Uint64:
		return getU64(v), nil
	case vector.Int8:
		return int8(v[0] ^ 0x80), nil
	case vector.Int16:
		return int16(getU16(v) ^ 0x8000), nil
	case vector.Int32:
		return int32(getU32(v) ^ 0x80000000), nil
	case vector.Int64:
		return int64(getU64(v) ^ 0x8000000000000000), nil
	case vector.Float32:
		return decodeFloat32(getU32(v)), nil
	case vector.Float64:
		return decodeFloat64(getU64(v)), nil
	case vector.Varchar:
		return strings.TrimRight(string(v), "\x00"), nil
	}
	return nil, fmt.Errorf("normkey: cannot decode type %v", key.Type)
}

func decodeFloat32(bits uint32) float32 {
	if bits&0x80000000 != 0 {
		return math.Float32frombits(bits &^ 0x80000000)
	}
	return math.Float32frombits(^bits)
}

func decodeFloat64(bits uint64) float64 {
	if bits&0x8000000000000000 != 0 {
		return math.Float64frombits(bits &^ 0x8000000000000000)
	}
	return math.Float64frombits(^bits)
}
