// Package strategy plans each run's execution from sampled statistics: a
// HyperLogLog cardinality sketch per key segment, a presortedness estimate,
// the effective (varying) key bytes and a first-byte entropy/skew measure,
// combined through perfmodel's run-sort cost curves into a per-run
// strategy.Plan — which sort generates the run (LSD/MSD radix, pdqsort, or
// duplicate-group counting), how its spill blocks are shaped, and what role
// it plays in the merge. It replaces the monolithic Options-driven
// configuration with per-run decisions (the paper's Future Work: algorithm
// choice should follow key size, tuple count and uniqueness).
package strategy

import (
	"encoding/binary"
	"math"
	"math/bits"
)

// hllP is the sketch precision: 2^hllP registers. 256 registers give a
// ~6.5% standard error, plenty for a sort/no-sort style decision, at 256
// bytes of zero-alloc per-analyzer state.
const hllP = 8

const hllM = 1 << hllP

// hllAlpha is the standard bias-correction constant for m = 256.
const hllAlpha = 0.7213 / (1 + 1.079/float64(hllM))

// HLL is a HyperLogLog cardinality sketch over 64-bit hashes. The zero
// value is ready to use; Reset reuses it without allocating.
type HLL struct {
	reg [hllM]uint8
}

// Reset clears the sketch for reuse.
func (h *HLL) Reset() { clear(h.reg[:]) }

// Add observes one hashed value. The input is finalized with a
// splitmix64-style avalanche first: FNV-1a's trailing multiply leaves
// low-order input differences out of the high bits, and the register
// index is exactly those bits.
//
//rowsort:hotpath
func (h *HLL) Add(hash uint64) {
	hash ^= hash >> 33
	hash *= 0xff51afd7ed558ccd
	hash ^= hash >> 33
	hash *= 0xc4ceb9fe1a85ec53
	hash ^= hash >> 33
	idx := hash >> (64 - hllP)
	// Rank of the first set bit in the remaining 56 bits, 1-based; an
	// all-zero remainder ranks 57.
	rank := uint8(bits.LeadingZeros64(hash<<hllP|1<<(hllP-1))) + 1
	if rank > h.reg[idx] {
		h.reg[idx] = rank
	}
}

// Estimate returns the estimated number of distinct values observed, with
// the standard linear-counting correction for small cardinalities.
func (h *HLL) Estimate() float64 {
	sum := 0.0
	zeros := 0
	for _, r := range h.reg {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	est := hllAlpha * hllM * hllM / sum
	if est <= 2.5*hllM && zeros > 0 {
		est = hllM * math.Log(float64(hllM)/float64(zeros))
	}
	return est
}

// HashBytes is the sketch's byte-string hash (FNV-1a over 8-byte words,
// matching the hash the old core heuristic sampled with).
//
//rowsort:hotpath
//rowsort:pure
func HashBytes(b []byte) uint64 {
	h := uint64(1469598103934665603)
	for len(b) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(b)) * 1099511628211
		b = b[8:]
	}
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}
