package strategy

import (
	"rowsort/internal/perfmodel"
)

// Decision thresholds. The sort crossover itself is NOT a threshold — it
// falls out of perfmodel's cost curves — but a few structural gates remain:
// when grouping pays, when a run counts as presorted, and when radix should
// run least-significant-digit first.
const (
	// dupGroupFrac: adjacent equal-key pair fraction at which the
	// duplicate-group sort is worth attempting (>= 0.5 means adjacent
	// groups average two or more rows, the collector's own bar).
	dupGroupFrac = 0.5
	// presortedCut mirrors pdqsort's pattern-detector regime.
	presortedCut = 0.95
	// dupRoleRatio: distinct fraction below which a run merges dup-heavy.
	dupRoleRatio = 0.05
	// lsdMaxKeyBytes: LSD radix runs only for keys at most this wide,
	// mirroring the radix package's own width rule. The gate is on total
	// key width, not the varying band: a "skipped" LSD pass over a
	// constant byte position still pays a full counting scan, so a wide
	// key with a narrow varying band does not favor LSD (measured: MSD is
	// ~6% faster at 3 varying bytes of 8, and even at 2 varying of 64).
	lsdMaxKeyBytes = 4
	// frontCodeMaxRatio: spill-block front-coding is attempted when the
	// sampled distinct fraction is at or below this (repeats mean shared
	// prefixes worth eliding) or the key has a constant prefix.
	frontCodeMaxRatio = 0.5
)

// Config fixes the per-sink facts a planner needs about the sort's shape.
type Config struct {
	// RowWidth and KeyWidth are the key-row stride and compared prefix.
	RowWidth, KeyWidth int
	// SegOffs are the key segments' start offsets (for the per-segment
	// cardinality sketches); nil means one segment.
	SegOffs []int
	// AllowDupGroup enables the duplicate-group sort (requires the key
	// prefix to be byte-decisive; the caller knows).
	AllowDupGroup bool
	// DefaultSpillBlockRows is the block shape a zero plan hint means.
	DefaultSpillBlockRows int
}

// Planner derives a Plan per run from sampled statistics. It owns one
// Analyzer's scratch, so it is cheap to keep per sink and must not be
// shared across goroutines.
type Planner struct {
	cfg Config
	an  *Analyzer
}

// NewPlanner returns a planner for the given sort shape.
func NewPlanner(cfg Config) *Planner {
	return &Planner{cfg: cfg, an: NewAnalyzer(cfg.KeyWidth, cfg.SegOffs)}
}

// PlanRun samples the pending run's key rows and returns its execution
// plan. Runs once per run cut; does not allocate.
func (p *Planner) PlanRun(keys []byte, n int) Plan {
	if n < 2 {
		return Plan{Algo: AlgoLSDRadix, Stats: Stats{Rows: n, Sampled: n, FirstVarying: -1}}
	}
	st := p.an.Analyze(keys, p.cfg.RowWidth, n)
	sh := perfmodel.RunShape{
		Rows:              n,
		RowBytes:          p.cfg.RowWidth,
		KeyBytes:          p.cfg.KeyWidth,
		EffectiveKeyBytes: st.EffectiveBytes,
		Sortedness:        st.Sortedness,
		DistinctRatio:     st.DistinctRatio,
	}
	pl := Plan{
		Stats:     st,
		RadixCost: perfmodel.RadixRunCost(sh),
		PdqCost:   perfmodel.PdqRunCost(sh),
	}

	// Sort choice: duplicate grouping first (it subsumes the radix arms —
	// the representatives still radix-sort, but each distinct key moves
	// once), then the modeled radix/pdq crossover.
	switch {
	case p.cfg.AllowDupGroup && st.DupRunFrac >= dupGroupFrac && n >= 2:
		pl.Algo = AlgoDupGroup
		// A confident sample relaxes the collector's bar; a borderline
		// one keeps the conservative average-group-of-two gate.
		pl.DupGroupMinAvg = 2
		if st.DupRunFrac >= 0.75 {
			pl.DupGroupMinAvg = 1.5
		}
	case pl.PdqCost < pl.RadixCost:
		pl.Algo = AlgoPdqsort
	case p.cfg.KeyWidth <= lsdMaxKeyBytes:
		pl.Algo = AlgoLSDRadix
	default:
		pl.Algo = AlgoMSDRadix
	}

	// Merge role.
	switch {
	case st.DistinctRatio <= dupRoleRatio || st.DupRunFrac >= dupGroupFrac:
		pl.MergeRole = RoleDupHeavy
	case st.Sortedness >= presortedCut:
		pl.MergeRole = RolePresorted
	}

	// Spill shape: duplicate-heavy runs take double-size blocks (bounded
	// decode buffers are cheap there — repeated keys front-code away) so
	// each block carries more mergeable context; everyone else keeps the
	// default. The hint only applies when the sort is unbudgeted and the
	// user did not pin SpillBlockRows (core enforces that).
	if pl.MergeRole == RoleDupHeavy && p.cfg.DefaultSpillBlockRows > 0 {
		pl.SpillBlockRows = 2 * p.cfg.DefaultSpillBlockRows
	}

	// Spill-key compression: attempt front-coding when repeats or a
	// constant prefix promise shared leading bytes between neighbors.
	constantPrefix := st.FirstVarying > 0 || (st.FirstVarying < 0 && n > 0)
	pl.FrontCode = st.DistinctRatio <= frontCodeMaxRatio ||
		st.DupRunFrac >= dupGroupFrac || constantPrefix
	return pl
}
