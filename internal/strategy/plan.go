package strategy

// Algo is the run-generation sort a plan selects.
type Algo uint8

const (
	// AlgoLSDRadix: least-significant-digit radix over the key bytes —
	// best when few byte positions vary.
	AlgoLSDRadix Algo = iota
	// AlgoMSDRadix: most-significant-digit radix with insertion-sort
	// leaves — the default for wider varying prefixes.
	AlgoMSDRadix
	// AlgoPdqsort: comparison pattern-defeating quicksort — wins on
	// presorted runs and on long high-entropy keys where byte passes
	// outnumber log2(n) compares.
	AlgoPdqsort
	// AlgoDupGroup: collect adjacent byte-equal groups, radix-sort one
	// representative per group, expand (the RLESort idea) — for
	// duplicate-heavy runs.
	AlgoDupGroup
)

// String returns the algorithm's stable wire name (used in stats, the run
// snapshot JSON and Prometheus labels).
func (a Algo) String() string {
	switch a {
	case AlgoLSDRadix:
		return "lsd-radix"
	case AlgoMSDRadix:
		return "msd-radix"
	case AlgoPdqsort:
		return "pdqsort"
	case AlgoDupGroup:
		return "dup-group"
	}
	return "unknown"
}

// MergeRole hints how a run should be treated by the multi-pass merge
// scheduler: grouping like runs into the same intermediate pass keeps the
// merger's duplicate-run fast path hot.
type MergeRole uint8

const (
	// RoleNormal: no special treatment.
	RoleNormal MergeRole = iota
	// RoleDupHeavy: the run is dominated by repeated keys.
	RoleDupHeavy
	// RolePresorted: the run arrived (nearly) in order.
	RolePresorted
)

// String returns the role's stable wire name.
func (r MergeRole) String() string {
	switch r {
	case RoleNormal:
		return "normal"
	case RoleDupHeavy:
		return "dup-heavy"
	case RolePresorted:
		return "presorted"
	}
	return "unknown"
}

// Plan is one run's execution plan: the sort that generates it, how it is
// laid out when spilled, and its role in the merge — plus the sampled
// statistics and modeled costs the decision came from, so every choice is
// auditable in SortStats.StrategyDecisions.
type Plan struct {
	// Algo is the selected run-generation sort.
	Algo Algo
	// MergeRole hints the run's merge scheduling.
	MergeRole MergeRole
	// SpillBlockRows, when positive, overrides the default spill block
	// shape for this run (duplicate-heavy runs take larger blocks: more
	// adjacent equal keys per block means more OVC duplicate hits and a
	// better front-coding ratio).
	SpillBlockRows int
	// FrontCode reports whether the run's spill blocks should attempt
	// prefix front-coding of the key section (re-checked per block and
	// per spill generation by the writer).
	FrontCode bool
	// DupGroupMinAvg is the minimum average adjacent-group size the
	// duplicate-group collector should demand; only meaningful when Algo
	// is AlgoDupGroup.
	DupGroupMinAvg float64
	// Stats is the sampled distribution the plan was derived from.
	Stats Stats
	// RadixCost and PdqCost are the modeled per-row costs the crossover
	// was decided on.
	RadixCost, PdqCost float64
}
