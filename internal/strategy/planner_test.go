package strategy

import (
	"testing"

	"rowsort/internal/workload"
)

func planWith(t *testing.T, keys []byte, rowW, keyW, n int, dupOK bool) Plan {
	t.Helper()
	p := NewPlanner(Config{RowWidth: rowW, KeyWidth: keyW, AllowDupGroup: dupOK,
		DefaultSpillBlockRows: 4096})
	return p.PlanRun(keys, n)
}

// The modeled crossover must reproduce the regimes the old hard-coded rule
// got right (these mirror the former core heuristic tests) — now with the
// specific radix variant visible in the plan.

func TestPlanRadixOnRandomShortKeys(t *testing.T) {
	rng := workload.NewRNG(140)
	n := 1 << 14
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = rng.Uint32()
	}
	pl := planWith(t, buildKeyRows(vals, 8), 8, 4, n, true)
	if pl.Algo != AlgoLSDRadix {
		t.Fatalf("random 4-byte keys: algo %v (radix %.1f vs pdq %.1f), want lsd-radix",
			pl.Algo, pl.RadixCost, pl.PdqCost)
	}
}

func TestPlanPdqOnPresorted(t *testing.T) {
	n := 1 << 14
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(i)
	}
	pl := planWith(t, buildKeyRows(vals, 8), 8, 4, n, true)
	if pl.Algo != AlgoPdqsort {
		t.Fatalf("sorted input: algo %v (radix %.1f vs pdq %.1f), want pdqsort",
			pl.Algo, pl.RadixCost, pl.PdqCost)
	}
	if pl.MergeRole != RolePresorted {
		t.Fatalf("sorted input: merge role %v, want presorted", pl.MergeRole)
	}
}

func TestPlanPdqOnLongEffectiveKeys(t *testing.T) {
	// 64 varying key bytes at n=1024: byte passes dwarf log2(n) compares.
	rng := workload.NewRNG(141)
	n := 1 << 10
	const rowW, keyW = 72, 64
	keys := make([]byte, n*rowW)
	for i := range keys {
		keys[i] = byte(rng.Intn(256))
	}
	pl := planWith(t, keys, rowW, keyW, n, true)
	if pl.Algo != AlgoPdqsort {
		t.Fatalf("64 varying bytes: algo %v (radix %.1f vs pdq %.1f), want pdqsort",
			pl.Algo, pl.RadixCost, pl.PdqCost)
	}
}

func TestPlanSharedPrefixCountsAsFree(t *testing.T) {
	// 64-byte keys, only bytes 62-63 vary: two effective passes make radix
	// beat pdqsort's 64-byte compares, but the key is far too wide for LSD
	// (constant positions still cost a counting scan per pass, so the
	// narrow varying band does not buy LSD back) — MSD it is. The constant
	// prefix's real payoff is the spill plan: front-coding elides it.
	rng := workload.NewRNG(142)
	n := 1 << 12
	const rowW, keyW = 72, 64
	keys := make([]byte, n*rowW)
	for i := 0; i < n; i++ {
		keys[i*rowW+62] = byte(rng.Intn(256))
		keys[i*rowW+63] = byte(rng.Intn(256))
	}
	pl := planWith(t, keys, rowW, keyW, n, true)
	if pl.Algo != AlgoMSDRadix {
		t.Fatalf("2 effective bytes: algo %v (radix %.1f vs pdq %.1f), want msd-radix",
			pl.Algo, pl.RadixCost, pl.PdqCost)
	}
	if !pl.FrontCode {
		t.Fatal("constant 62-byte prefix should enable spill front-coding")
	}
}

func TestPlanMSDOnWideVaryingRadixRegime(t *testing.T) {
	// 8 varying bytes at n=64k: radix still wins (8 < log2 n crossover
	// region) but too many passes for LSD.
	rng := workload.NewRNG(144)
	n := 1 << 16
	const rowW, keyW = 16, 8
	keys := make([]byte, n*rowW)
	for i := 0; i < n; i++ {
		for b := 0; b < keyW; b++ {
			keys[i*rowW+b] = byte(rng.Intn(256))
		}
	}
	pl := planWith(t, keys, rowW, keyW, n, true)
	if pl.Algo != AlgoMSDRadix {
		t.Fatalf("8 varying bytes at 64k rows: algo %v (radix %.1f vs pdq %.1f), want msd-radix",
			pl.Algo, pl.RadixCost, pl.PdqCost)
	}
}

func TestPlanDupGroupOnDupHeavyRuns(t *testing.T) {
	n := 1 << 14
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(i / 16) // adjacent groups of 16
	}
	pl := planWith(t, buildKeyRows(vals, 8), 8, 4, n, true)
	if pl.Algo != AlgoDupGroup {
		t.Fatalf("groups of 16: algo %v (dupFrac %.2f), want dup-group", pl.Algo, pl.Stats.DupRunFrac)
	}
	if pl.MergeRole != RoleDupHeavy {
		t.Fatalf("groups of 16: merge role %v, want dup-heavy", pl.MergeRole)
	}
	if pl.SpillBlockRows != 2*4096 {
		t.Fatalf("dup-heavy block hint = %d, want %d", pl.SpillBlockRows, 2*4096)
	}
	if !pl.FrontCode {
		t.Fatal("dup-heavy run should enable spill front-coding")
	}
	// Same data with dup-grouping unavailable (tie-capable keys): falls to
	// the cost crossover, which picks a radix arm for one effective byte
	// region... the point is it must not pick AlgoDupGroup.
	pl = planWith(t, buildKeyRows(vals, 8), 8, 4, n, false)
	if pl.Algo == AlgoDupGroup {
		t.Fatal("dup-group chosen despite AllowDupGroup=false")
	}
}

// TestPlanNearlySortedStaysRadix pins the measured crossover: at 0.1%
// disorder pdqsort's pattern detection already loses to radix (the move
// budget blows on the displaced rows), so the plan must not take the
// presorted cliff even though the run is 99.8% in order — and even when the
// base sample happens to look perfectly sorted.
func TestPlanNearlySortedStaysRadix(t *testing.T) {
	rng := workload.NewRNG(146)
	n := 1 << 14
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(i)
	}
	for i := range vals {
		if rng.Float64() < 0.001 {
			j := rng.Intn(n)
			vals[i], vals[j] = vals[j], vals[i]
		}
	}
	pl := planWith(t, buildKeyRows(vals, 8), 8, 4, n, false)
	if pl.Algo == AlgoPdqsort {
		t.Fatalf("0.1%% disorder: algo pdqsort (sortedness %.4f) — cliff taken on imperfect run",
			pl.Stats.Sortedness)
	}
}

func TestPlanSawtoothStaysRadix(t *testing.T) {
	// The adversarial presortedness input: locally ascending ramps over a
	// short-key domain. pdqsort's pattern detector gives up on it, so the
	// plan must not take the presorted cliff.
	n := 1 << 14
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(i % 512)
	}
	pl := planWith(t, buildKeyRows(vals, 8), 8, 4, n, false)
	if pl.Algo == AlgoPdqsort {
		t.Fatalf("sawtooth: algo pdqsort (sortedness %.2f) — the estimator was fooled",
			pl.Stats.Sortedness)
	}
}

func TestPlanDegenerate(t *testing.T) {
	p := NewPlanner(Config{RowWidth: 8, KeyWidth: 4})
	if pl := p.PlanRun(nil, 0); pl.Algo != AlgoLSDRadix {
		t.Fatalf("empty run: algo %v, want lsd-radix", pl.Algo)
	}
	one := buildKeyRows([]uint32{1}, 8)
	if pl := p.PlanRun(one, 1); pl.Algo == AlgoPdqsort {
		t.Fatalf("single row: algo %v", pl.Algo)
	}
	// All-equal keys: zero effective bytes — one skip pass, radix.
	keys := make([]byte, 1000*8)
	pl := p.PlanRun(keys, 1000)
	if pl.Algo != AlgoLSDRadix && pl.Algo != AlgoDupGroup {
		t.Fatalf("all-equal keys: algo %v", pl.Algo)
	}
}

// Fallback rule ports of the original core heuristic tests.

func TestChooseRadixFallback(t *testing.T) {
	rng := workload.NewRNG(140)
	n := 1 << 14
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = rng.Uint32()
	}
	if !ChooseRadix(buildKeyRows(vals, 8), 8, 4, n) {
		t.Fatal("random 4-byte keys should pick radix")
	}
	for i := range vals {
		vals[i] = uint32(i)
	}
	if ChooseRadix(buildKeyRows(vals, 8), 8, 4, n) {
		t.Fatal("sorted input should pick pdqsort (pattern detection)")
	}
	if !ChooseRadix(nil, 8, 4, 0) || !ChooseRadix(make([]byte, 8), 8, 4, 1) {
		t.Fatal("degenerate inputs should default to radix")
	}
	keys := make([]byte, 1000*8)
	if !ChooseRadix(keys, 8, 4, 1000) {
		t.Fatal("all-equal keys should pick radix (single skip pass)")
	}
}

func TestSampleDistinctKeys(t *testing.T) {
	vals := make([]uint32, 1000)
	for i := range vals {
		vals[i] = uint32(i % 3)
	}
	keys := buildKeyRows(vals, 8)
	if got := SampleDistinctKeys(keys, 8, 4, 1000); got != 3 {
		t.Fatalf("distinct estimate = %d, want 3", got)
	}
}

func TestAnalyzeAllocs(t *testing.T) {
	n := 1 << 14
	rng := workload.NewRNG(19)
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = rng.Uint32()
	}
	keys := buildKeyRows(vals, 8)
	p := NewPlanner(Config{RowWidth: 8, KeyWidth: 4, AllowDupGroup: true})
	p.PlanRun(keys, n) // warm up
	if allocs := testing.AllocsPerRun(20, func() { p.PlanRun(keys, n) }); allocs > 0 {
		t.Fatalf("PlanRun allocates %.1f times per run, want 0", allocs)
	}
}
