package strategy

import (
	"bytes"
	"math"
)

// Sampling bounds: positions are picked with a multiplicative jump (the
// same Knuth constant the old heuristic's distinct sampler used) rather
// than a fixed stride, so periodic inputs — a sawtooth whose period
// divides the stride — cannot alias with the sampling.
const (
	maxSamples = 256 // rows sampled for sketches, varying bytes, local pairs
	maxPairs   = 128 // sampled index pairs for the global inversion estimate

	// confirmPairs is the denser adjacent-pair scan a perfect-looking sample
	// must survive before it reports Sortedness == 1. pdqsort's pattern
	// detector only pays on runs with essentially zero displaced rows
	// (measured: it loses to radix at even 0.01% disorder), and 256 pairs
	// cannot distinguish fully sorted from 0.1% disorder — a clean base
	// sample is ~22% likely there. 2048 pairs push the false-perfect odds
	// below 2% at that disorder while costing only byte compares.
	confirmPairs = 2048
)

// MaxSegments caps the per-key-segment cardinality sketches an analyzer
// keeps; keys with more segments fold the tail into the last sketch.
const MaxSegments = 4

// Stats is one run's sampled distribution: everything the planner needs to
// predict the sort-cost crossover. All fields are fixed-size, so an
// Analyzer produces one without allocating.
type Stats struct {
	// Rows is the run's row count; Sampled is how many rows the estimates
	// are based on.
	Rows, Sampled int
	// Sortedness is the order estimate used for decisions:
	// min(LocalSorted, GlobalSorted). LocalSorted is the fraction of
	// sampled adjacent pairs in nondecreasing order (what an insertion
	// pass sees); GlobalSorted is the fraction of sampled index pairs
	// (i < j) with key_i <= key_j — 1 minus the inversion density. A
	// sawtooth is locally sorted but globally ~0.5, so taking the min is
	// what keeps the estimator honest on adversarial ramps.
	Sortedness, LocalSorted, GlobalSorted float64
	// EffectiveBytes is the number of key byte positions that vary across
	// the sample (radix passes that scatter; constant positions are
	// skipped). FirstVarying is the first such position, -1 when all
	// sampled keys are equal.
	EffectiveBytes, FirstVarying int
	// DistinctEstimate is the HLL full-key cardinality estimate over the
	// sample, linearly extrapolated to the run; DistinctRatio is it over
	// Rows, clamped to (0, 1].
	DistinctEstimate float64
	DistinctRatio    float64
	// FirstByteEntropy is the Shannon entropy (bits) of the first varying
	// key byte across the sample: low for dictionary-coded or skewed
	// keys (few hot values), ~8 for uniform bytes. It is the skew signal.
	FirstByteEntropy float64
	// DupRunFrac is the fraction of sampled adjacent pairs whose keys are
	// byte-equal — the duplicate-group collector's payoff predictor: an
	// average adjacent group of g rows shows (g-1)/g equal pairs, so
	// DupRunFrac >= 0.5 means groups average two or more rows.
	DupRunFrac float64
	// SegDistinct holds per-key-segment HLL cardinality estimates (sample
	// scale, not extrapolated) for the first NumSegs segments.
	SegDistinct [MaxSegments]float64
	NumSegs     int
}

// Analyzer computes Stats over a run's key rows. All scratch is owned by
// the analyzer and reused across runs, so the analysis itself allocates
// nothing; create one per sink (it is not safe for concurrent use).
type Analyzer struct {
	keyWidth int
	segOffs  []int // segment start offsets within the key, ascending

	full   HLL
	seg    [MaxSegments]HLL
	counts [256]int
	varies []bool
}

// NewAnalyzer returns an analyzer for keys of the given width whose
// segments start at segOffs (ascending; may be nil for a single segment).
func NewAnalyzer(keyWidth int, segOffs []int) *Analyzer {
	a := &Analyzer{keyWidth: keyWidth, varies: make([]bool, keyWidth)}
	if len(segOffs) == 0 {
		segOffs = []int{0}
	}
	a.segOffs = append([]int(nil), segOffs...)
	return a
}

// samplePos returns the j-th sampled row index in [0, n).
//
//rowsort:hotpath
//rowsort:pure
func samplePos(j, n int) int {
	return int((uint64(j)*2654435761 + 12345) % uint64(n))
}

// Analyze samples the run's key rows (n rows of stride rowWidth, compared
// on their first keyWidth bytes) and returns its distribution estimates.
// It runs once per run cut — off the per-chunk ingest path — and does not
// allocate.
//
//rowsort:hotpath
func (a *Analyzer) Analyze(keys []byte, rowWidth, n int) Stats {
	kw := a.keyWidth
	st := Stats{Rows: n, FirstVarying: -1}
	if n == 0 || kw == 0 {
		return st
	}
	samples := min(maxSamples, n)
	st.Sampled = samples

	a.full.Reset()
	nsegs := min(len(a.segOffs), MaxSegments)
	for s := 0; s < nsegs; s++ {
		a.seg[s].Reset()
	}
	clear(a.varies[:kw])

	first := keys[:kw]
	localPairs, localSorted, dupPairs := 0, 0, 0
	for j := 0; j < samples; j++ {
		i := samplePos(j, n)
		row := keys[i*rowWidth : i*rowWidth+kw]
		a.full.Add(HashBytes(row))
		for s := 0; s < nsegs; s++ {
			end := kw
			if s+1 < nsegs {
				end = a.segOffs[s+1]
			}
			a.seg[s].Add(HashBytes(row[a.segOffs[s]:end]))
		}
		for b := 0; b < kw; b++ {
			if row[b] != first[b] {
				a.varies[b] = true
			}
		}
		if i+1 < n {
			next := keys[(i+1)*rowWidth : (i+1)*rowWidth+kw]
			localPairs++
			switch bytes.Compare(row, next) {
			case -1:
				localSorted++
			case 0:
				localSorted++
				dupPairs++
			}
		}
	}

	for b := 0; b < kw; b++ {
		if a.varies[b] {
			st.EffectiveBytes++
			if st.FirstVarying < 0 {
				st.FirstVarying = b
			}
		}
	}
	if localPairs > 0 {
		st.LocalSorted = float64(localSorted) / float64(localPairs)
		st.DupRunFrac = float64(dupPairs) / float64(localPairs)
	}

	// Global order: sampled index pairs i < j. Equal sampled positions are
	// skipped; a fully sorted input scores 1, a sawtooth ~0.5.
	pairs, sorted := 0, 0
	for j := 0; j < maxPairs; j++ {
		p := samplePos(2*j, n)
		q := samplePos(2*j+1, n)
		if p == q {
			continue
		}
		if p > q {
			p, q = q, p
		}
		pairs++
		if bytes.Compare(keys[p*rowWidth:p*rowWidth+kw], keys[q*rowWidth:q*rowWidth+kw]) <= 0 {
			sorted++
		}
	}
	if pairs > 0 {
		st.GlobalSorted = float64(sorted) / float64(pairs)
	} else {
		st.GlobalSorted = st.LocalSorted
	}
	st.Sortedness = math.Min(st.LocalSorted, st.GlobalSorted)

	// A perfect sample is a strong claim — strong enough to route the run to
	// a comparison sort — so confirm it against a denser adjacent-pair scan
	// before letting Sortedness report exactly 1.
	if st.Sortedness == 1 && n > 2 {
		st.LocalSorted = a.confirmSorted(keys, rowWidth, n)
		st.Sortedness = math.Min(st.LocalSorted, st.GlobalSorted)
	}

	// Cardinality: the sketch saw the sample; extrapolate linearly to the
	// run (a sample without repeats is evidence of high cardinality, one
	// dominated by repeats caps the estimate at the repeat structure).
	sampleDistinct := a.full.Estimate()
	if sampleDistinct > float64(samples) {
		sampleDistinct = float64(samples)
	}
	st.DistinctEstimate = sampleDistinct * float64(n) / float64(samples)
	if st.DistinctEstimate > float64(n) {
		st.DistinctEstimate = float64(n)
	}
	st.DistinctRatio = st.DistinctEstimate / float64(n)
	if st.DistinctRatio <= 0 {
		st.DistinctRatio = 1 / float64(n)
	}
	st.NumSegs = nsegs
	for s := 0; s < nsegs; s++ {
		est := a.seg[s].Estimate()
		if est > float64(samples) {
			est = float64(samples)
		}
		st.SegDistinct[s] = est
	}

	// Entropy of the first varying byte over the same sampled rows (a
	// second walk over <= maxSamples positions, still zero-alloc).
	if st.FirstVarying >= 0 {
		clear(a.counts[:])
		for j := 0; j < samples; j++ {
			i := samplePos(j, n)
			a.counts[keys[i*rowWidth+st.FirstVarying]]++
		}
		h := 0.0
		for _, c := range a.counts {
			if c == 0 {
				continue
			}
			p := float64(c) / float64(samples)
			h -= p * math.Log2(p)
		}
		st.FirstByteEntropy = h
	}
	return st
}

// confirmSorted rechecks adjacent-pair order with up to confirmPairs pairs
// (all of them when the run is small enough) and returns the in-order
// fraction. Zero-alloc, byte compares only.
//
//rowsort:hotpath
func (a *Analyzer) confirmSorted(keys []byte, rowWidth, n int) float64 {
	kw := a.keyWidth
	pairs := n - 1
	sorted := 0
	if pairs <= confirmPairs {
		for i := 0; i < pairs; i++ {
			if bytes.Compare(keys[i*rowWidth:i*rowWidth+kw],
				keys[(i+1)*rowWidth:(i+1)*rowWidth+kw]) <= 0 {
				sorted++
			}
		}
	} else {
		pairs = confirmPairs
		for j := 0; j < confirmPairs; j++ {
			i := samplePos(j, n-1)
			if bytes.Compare(keys[i*rowWidth:i*rowWidth+kw],
				keys[(i+1)*rowWidth:(i+1)*rowWidth+kw]) <= 0 {
				sorted++
			}
		}
	}
	return float64(sorted) / float64(pairs)
}
