package strategy

import (
	"encoding/binary"
	"testing"

	"rowsort/internal/workload"
)

// buildKeyRows packs big-endian uint32 keys into rows of the given stride.
func buildKeyRows(vals []uint32, rowWidth int) []byte {
	data := make([]byte, len(vals)*rowWidth)
	for i, v := range vals {
		binary.BigEndian.PutUint32(data[i*rowWidth:], v)
	}
	return data
}

func analyze(t *testing.T, vals []uint32) Stats {
	t.Helper()
	a := NewAnalyzer(4, nil)
	return a.Analyze(buildKeyRows(vals, 8), 8, len(vals))
}

// TestSortednessSawtooth is the adversarial case: a sawtooth is locally
// ascending almost everywhere (adjacent pairs look sorted) but globally
// unordered. The combined estimate must not call it presorted — that is
// what taking min(local, global) buys, and what both a pure adjacent-pair
// estimator and a fixed-stride estimator (whose stride a period can
// divide) get wrong.
func TestSortednessSawtooth(t *testing.T) {
	n := 1 << 14
	for _, period := range []int{16, 64, 128, 1024} {
		vals := make([]uint32, n)
		for i := range vals {
			vals[i] = uint32(i % period)
		}
		st := analyze(t, vals)
		if st.LocalSorted < 0.8 {
			t.Errorf("period %d: local sortedness %.2f, expected high (ramps ascend)",
				period, st.LocalSorted)
		}
		if st.Sortedness >= presortedCut {
			t.Errorf("period %d: combined sortedness %.2f >= %.2f — sawtooth misread as presorted",
				period, st.Sortedness, presortedCut)
		}
	}
}

func TestSortednessSortedAndNearly(t *testing.T) {
	n := 1 << 14
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(i)
	}
	if st := analyze(t, vals); st.Sortedness < 0.999 {
		t.Errorf("sorted input: sortedness %.3f, want ~1", st.Sortedness)
	}
	// Displace 0.5% of positions: still overwhelmingly sorted.
	rng := workload.NewRNG(7)
	for k := 0; k < n/200; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		vals[i], vals[j] = vals[j], vals[i]
	}
	if st := analyze(t, vals); st.Sortedness < presortedCut {
		t.Errorf("0.5%% disorder: sortedness %.3f, want >= %.2f", st.Sortedness, presortedCut)
	}
	// Random input: nowhere near sorted.
	for i := range vals {
		vals[i] = rng.Uint32()
	}
	if st := analyze(t, vals); st.Sortedness > 0.7 {
		t.Errorf("random input: sortedness %.3f, want ~0.5", st.Sortedness)
	}
}

// TestConfirmScanCatchesSparseDisorder: a single adjacent swap in a run
// small enough for the confirmation pass to scan every pair must never
// report Sortedness == 1, wherever the swap lands — including positions the
// 256-row base sample skips. This is the guard that keeps pdqsort's razor-
// thin presorted cliff honest: a perfect base sample alone is not evidence
// of a perfectly sorted run.
func TestConfirmScanCatchesSparseDisorder(t *testing.T) {
	n := 2000 // n-1 < confirmPairs: the confirm pass is exhaustive
	for _, swapAt := range []int{1, 500, 777, 1000, 1500, n - 2} {
		vals := make([]uint32, n)
		for i := range vals {
			vals[i] = uint32(i)
		}
		vals[swapAt], vals[swapAt+1] = vals[swapAt+1], vals[swapAt]
		st := analyze(t, vals)
		if st.Sortedness >= 1 {
			t.Errorf("swap at %d: sortedness %.4f, confirm scan missed the inversion",
				swapAt, st.Sortedness)
		}
		if st.Sortedness < 0.99 {
			t.Errorf("swap at %d: sortedness %.4f, one swap should stay near 1",
				swapAt, st.Sortedness)
		}
	}
}

// TestEntropyDictVsUniform: dictionary-coded keys (a handful of hot values)
// must show markedly lower first-byte entropy than uniform keys — the skew
// signal the planner records per run.
func TestEntropyDictVsUniform(t *testing.T) {
	n := 1 << 14
	rng := workload.NewRNG(11)
	dict := make([]uint32, n)
	for i := range dict {
		// 8 distinct values spread over the byte range, like 1-byte dict
		// codes for a low-cardinality column.
		dict[i] = uint32(rng.Intn(8)) << 29
	}
	uniform := make([]uint32, n)
	for i := range uniform {
		uniform[i] = rng.Uint32()
	}
	dictSt, uniSt := analyze(t, dict), analyze(t, uniform)
	if dictSt.FirstByteEntropy >= 3.5 {
		t.Errorf("dict-coded entropy %.2f bits, want < 3.5 (8 values = 3 bits)", dictSt.FirstByteEntropy)
	}
	if uniSt.FirstByteEntropy <= 6 {
		t.Errorf("uniform entropy %.2f bits, want > 6", uniSt.FirstByteEntropy)
	}
	if dictSt.FirstByteEntropy >= uniSt.FirstByteEntropy {
		t.Errorf("dict entropy %.2f >= uniform %.2f", dictSt.FirstByteEntropy, uniSt.FirstByteEntropy)
	}
	if dictSt.DistinctRatio > 0.05 {
		t.Errorf("dict distinct ratio %.3f, want <= 0.05 (8 of %d)", dictSt.DistinctRatio, n)
	}
	if uniSt.DistinctRatio < 0.5 {
		t.Errorf("uniform distinct ratio %.3f, want high", uniSt.DistinctRatio)
	}
}

func TestEffectiveBytesAndDupRuns(t *testing.T) {
	n := 4096
	// Constant high bytes, varying low byte: one effective byte at pos 3.
	vals := make([]uint32, n)
	rng := workload.NewRNG(13)
	for i := range vals {
		vals[i] = 0xAABBCC00 | uint32(rng.Intn(256))
	}
	st := analyze(t, vals)
	if st.EffectiveBytes != 1 || st.FirstVarying != 3 {
		t.Errorf("effective=%d firstVarying=%d, want 1 at 3", st.EffectiveBytes, st.FirstVarying)
	}
	// Runs of 8 equal keys: adjacent-dup fraction ~7/8.
	for i := range vals {
		vals[i] = uint32(i / 8)
	}
	st = analyze(t, vals)
	if st.DupRunFrac < 0.7 {
		t.Errorf("runs of 8: dup-run fraction %.2f, want ~0.875", st.DupRunFrac)
	}
	// All-equal keys: no varying byte, full dup fraction.
	for i := range vals {
		vals[i] = 5
	}
	st = analyze(t, vals)
	if st.EffectiveBytes != 0 || st.FirstVarying != -1 || st.DupRunFrac != 1 {
		t.Errorf("all-equal: effective=%d firstVarying=%d dupFrac=%.2f",
			st.EffectiveBytes, st.FirstVarying, st.DupRunFrac)
	}
}

func TestPerSegmentCardinality(t *testing.T) {
	// Two 4-byte segments: first from 4 values, second effectively unique.
	n := 4096
	rw, kw := 16, 8
	keys := make([]byte, n*rw)
	rng := workload.NewRNG(17)
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint32(keys[i*rw:], uint32(rng.Intn(4)))
		binary.BigEndian.PutUint32(keys[i*rw+4:], rng.Uint32())
	}
	a := NewAnalyzer(kw, []int{0, 4})
	st := a.Analyze(keys, rw, n)
	if st.NumSegs != 2 {
		t.Fatalf("NumSegs = %d, want 2", st.NumSegs)
	}
	if st.SegDistinct[0] < 2 || st.SegDistinct[0] > 8 {
		t.Errorf("seg 0 distinct %.1f, want ~4", st.SegDistinct[0])
	}
	if st.SegDistinct[1] < 0.7*float64(st.Sampled) {
		t.Errorf("seg 1 distinct %.1f of %d sampled, want near-unique", st.SegDistinct[1], st.Sampled)
	}
}

func TestAnalyzeDegenerate(t *testing.T) {
	a := NewAnalyzer(4, nil)
	if st := a.Analyze(nil, 8, 0); st.Rows != 0 || st.Sampled != 0 {
		t.Fatalf("empty input: %+v", st)
	}
	one := buildKeyRows([]uint32{9}, 8)
	st := a.Analyze(one, 8, 1)
	if st.Sampled != 1 || st.DupRunFrac != 0 {
		t.Fatalf("single row: %+v", st)
	}
}
