package strategy

import (
	"bytes"
	"math/bits"
)

// Degenerate fallback: the original core/heuristic.go rule, kept verbatim
// as the zero-infrastructure baseline the sampled planner is measured
// against (and as the decision procedure for callers that have no Planner
// at hand). The model: radix costs O(n·k) byte passes, comparison sorting
// O(n·log n), so radix loses when the varying key width is large relative
// to log2(n); nearly-sorted inputs are pdqsort's best case.

// ChooseRadix reports whether radix sort should sort the given key rows.
// keys holds n rows of stride rowWidth whose first keyWidth bytes are the
// normalized key.
func ChooseRadix(keys []byte, rowWidth, keyWidth, n int) bool {
	if n < 2 {
		return true
	}
	logN := bits.Len(uint(n)) - 1

	// Effective key width: bytes that actually vary across a sample. Shared
	// prefix or constant bytes become skipped passes, so they are free.
	effective := EffectiveKeyBytes(keys, rowWidth, keyWidth, n)
	if effective == 0 {
		return true // all keys equal: skip passes only, no data movement
	}

	// Nearly sorted input: pdqsort's partial-insertion detector handles it
	// in ~n comparisons; radix gains nothing from pre-sortedness.
	if SampledSortedness(keys, rowWidth, keyWidth, n) > 0.95 {
		return false
	}

	// Radix does ~effective passes over n rows; pdqsort does ~logN rounds
	// of comparisons, each touching the differing prefix. Prefer radix
	// while its pass count stays within a small factor of logN.
	return effective <= 2*logN
}

// SampledSortedness returns the fraction of adjacent sampled pairs already
// in nondecreasing key order.
func SampledSortedness(keys []byte, rowWidth, keyWidth, n int) float64 {
	const samples = 128
	step := max(1, n/samples)
	pairs, sorted := 0, 0
	for i := step; i < n; i += step {
		a := keys[(i-step)*rowWidth : (i-step)*rowWidth+keyWidth]
		b := keys[i*rowWidth : i*rowWidth+keyWidth]
		pairs++
		if bytes.Compare(a, b) <= 0 {
			sorted++
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(sorted) / float64(pairs)
}

// EffectiveKeyBytes counts key byte positions that vary across a sample of
// rows — an estimate of the radix passes that will actually move data.
func EffectiveKeyBytes(keys []byte, rowWidth, keyWidth, n int) int {
	const samples = 256
	step := max(1, n/samples)
	first := keys[:keyWidth]
	varies := make([]bool, keyWidth)
	for i := step; i < n; i += step {
		row := keys[i*rowWidth : i*rowWidth+keyWidth]
		for b := 0; b < keyWidth; b++ {
			if row[b] != first[b] {
				varies[b] = true
			}
		}
	}
	count := 0
	for _, v := range varies {
		if v {
			count++
		}
	}
	return count
}

// SampleDistinctKeys estimates the number of distinct keys among up to 256
// sampled rows, using the full key bytes. Rows are picked with a
// multiplicative jump rather than a fixed stride so periodic data does not
// alias with the sampling.
func SampleDistinctKeys(keys []byte, rowWidth, keyWidth, n int) int {
	samples := min(256, n)
	seen := make(map[uint64]struct{}, samples)
	for j := 0; j < samples; j++ {
		i := samplePos(j, n)
		row := keys[i*rowWidth : i*rowWidth+keyWidth]
		seen[HashBytes(row)] = struct{}{}
	}
	return len(seen)
}
