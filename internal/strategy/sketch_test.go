package strategy

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"
)

// TestHLLErrorBounds feeds streams of known cardinality through the sketch
// and checks the estimate lands within a few standard errors (p=8 gives a
// ~6.5% standard error; we allow 3x that plus small-range slack).
func TestHLLErrorBounds(t *testing.T) {
	for _, card := range []int{1, 10, 100, 1000, 10_000, 100_000} {
		var h HLL
		var buf [8]byte
		for i := 0; i < 3*card; i++ { // repeats must not move the estimate
			binary.LittleEndian.PutUint64(buf[:], uint64(i%card)*7919+13)
			h.Add(HashBytes(buf[:]))
		}
		got := h.Estimate()
		relErr := math.Abs(got-float64(card)) / float64(card)
		if relErr > 0.20 {
			t.Errorf("cardinality %d: estimate %.0f (rel err %.1f%%), want within 20%%",
				card, got, 100*relErr)
		}
	}
}

func TestHLLReset(t *testing.T) {
	var h HLL
	var buf [8]byte
	for i := 0; i < 1000; i++ {
		binary.LittleEndian.PutUint64(buf[:], uint64(i))
		h.Add(HashBytes(buf[:]))
	}
	h.Reset()
	binary.LittleEndian.PutUint64(buf[:], 42)
	h.Add(HashBytes(buf[:]))
	if got := h.Estimate(); math.Abs(got-1) > 0.5 {
		t.Fatalf("after Reset + one value, estimate = %.2f, want ~1", got)
	}
}

func TestHashBytesDistinguishes(t *testing.T) {
	seen := map[uint64]string{}
	for i := 0; i < 10_000; i++ {
		b := []byte(fmt.Sprintf("key-%d", i))
		h := HashBytes(b)
		if prev, dup := seen[h]; dup {
			t.Fatalf("hash collision between %q and %q", prev, b)
		}
		seen[h] = string(b)
	}
}
