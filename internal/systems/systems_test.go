package systems

import (
	"fmt"
	"sort"
	"testing"

	"rowsort/internal/core"
	"rowsort/internal/normkey"
	"rowsort/internal/vector"
	"rowsort/internal/workload"
)

// checkSystemSorted verifies a system's output against the reference
// comparator: key columns agree positionally with a stable oracle sort, and
// the full rows are a permutation of the input.
func checkSystemSorted(t *testing.T, input, got *vector.Table, keys []core.SortColumn, ctx string) {
	t.Helper()
	if got.NumRows() != input.NumRows() {
		t.Fatalf("%s: got %d rows, want %d", ctx, got.NumRows(), input.NumRows())
	}
	cols := materialize(input)
	nkeys := normKeys(input.Schema, keys)
	kcols := keyColumns(cols, keys)
	idx := make([]int, input.NumRows())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return normkey.CompareRows(nkeys, kcols, idx[a], idx[b]) < 0
	})
	gotCols := materialize(got)
	for pos, in := range idx {
		for _, k := range keys {
			want := cols[k.Column].Value(in)
			have := gotCols[k.Column].Value(pos)
			if want != have {
				t.Fatalf("%s: position %d key col %d: got %v, want %v", ctx, pos, k.Column, have, want)
			}
		}
	}
	counts := map[string]int{}
	for i := 0; i < input.NumRows(); i++ {
		counts[fingerprint(cols, i)]++
	}
	for i := 0; i < got.NumRows(); i++ {
		counts[fingerprint(gotCols, i)]--
	}
	for k, c := range counts {
		if c != 0 {
			t.Fatalf("%s: row multiset mismatch for %q (%+d)", ctx, k, c)
		}
	}
}

func fingerprint(cols []*vector.Vector, i int) string {
	s := ""
	for _, c := range cols {
		s += fmt.Sprintf("%v|", c.Value(i))
	}
	return s
}

func TestAllSystemsSortCatalogSales(t *testing.T) {
	tbl := workload.CatalogSales(6_000, 10, 91)
	specs := [][]core.SortColumn{
		{{Column: 0}},
		{{Column: 0}, {Column: 1}},
		{{Column: 0}, {Column: 1}, {Column: 2}, {Column: 3}},
		{{Column: 3, Descending: true}, {Column: 2, NullsLast: true}},
	}
	for _, sys := range All(4) {
		for si, keys := range specs {
			got, err := sys.Sort(tbl, keys)
			if err != nil {
				t.Fatalf("%s spec %d: %v", sys.Name(), si, err)
			}
			checkSystemSorted(t, tbl, got, keys, fmt.Sprintf("%s spec %d", sys.Name(), si))
		}
	}
}

func TestAllSystemsSortCustomerStrings(t *testing.T) {
	tbl := workload.Customer(4_000, 92)
	specs := [][]core.SortColumn{
		{{Column: 4}, {Column: 5}},
		{{Column: 1}, {Column: 2}, {Column: 3}},
		{{Column: 4, Descending: true, NullsLast: true}},
	}
	for _, sys := range All(3) {
		for si, keys := range specs {
			got, err := sys.Sort(tbl, keys)
			if err != nil {
				t.Fatalf("%s spec %d: %v", sys.Name(), si, err)
			}
			checkSystemSorted(t, tbl, got, keys, fmt.Sprintf("%s strings spec %d", sys.Name(), si))
		}
	}
}

func TestAllSystemsSingleIntKey(t *testing.T) {
	// Exercises ClickHouse's radix path and the Figure 12 workload shape.
	vals := workload.ShuffledInt32s(20_000, 93)
	schema := vector.Schema{{Name: "v", Type: vector.Int32}}
	tbl, err := vector.TableFromColumns(schema, vector.FromInt32(vals))
	if err != nil {
		t.Fatal(err)
	}
	keys := []core.SortColumn{{Column: 0}}
	for _, sys := range All(4) {
		got, err := sys.Sort(tbl, keys)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		col := got.Column(0)
		for i := 0; i < col.Len(); i++ {
			if col.Value(i).(int32) != int32(i) {
				t.Fatalf("%s: position %d = %v", sys.Name(), i, col.Value(i))
			}
		}
	}
}

func TestAllSystemsFloats(t *testing.T) {
	vals := workload.UniformFloat32s(10_000, 94)
	schema := vector.Schema{{Name: "f", Type: vector.Float32}}
	tbl, err := vector.TableFromColumns(schema, vector.FromFloat32(vals))
	if err != nil {
		t.Fatal(err)
	}
	keys := []core.SortColumn{{Column: 0}}
	for _, sys := range All(4) {
		got, err := sys.Sort(tbl, keys)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		checkSystemSorted(t, tbl, got, keys, sys.Name()+" floats")
	}
}

func TestSortCountAndByName(t *testing.T) {
	tbl := workload.CatalogSales(1_000, 1, 95)
	keys := []core.SortColumn{{Column: 0}}
	sys, err := ByName("DuckDB", 2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := SortCount(sys, tbl, keys)
	if err != nil || n != 1000 {
		t.Fatalf("SortCount = %d, %v", n, err)
	}
	if _, err := ByName("Oracle", 2); err == nil {
		t.Fatal("unknown system should error")
	}
}

func TestSystemsErrorPaths(t *testing.T) {
	tbl := workload.CatalogSales(100, 1, 96)
	for _, sys := range All(2) {
		if _, err := sys.Sort(tbl, nil); err == nil {
			t.Fatalf("%s: empty keys should error", sys.Name())
		}
		if _, err := sys.Sort(tbl, []core.SortColumn{{Column: 99}}); err == nil {
			t.Fatalf("%s: bad column should error", sys.Name())
		}
	}
}

func TestSystemNames(t *testing.T) {
	want := []string{"ClickHouse", "DuckDB", "HyPer", "MonetDB", "Umbra"}
	all := All(1)
	for i, sys := range all {
		if sys.Name() != want[i] {
			t.Fatalf("system %d = %s, want %s", i, sys.Name(), want[i])
		}
	}
}

func TestSplitRanges(t *testing.T) {
	rs := splitRanges(10, 3)
	if len(rs) != 3 || rs[0][0] != 0 || rs[2][1] != 10 {
		t.Fatalf("splitRanges: %v", rs)
	}
	covered := 0
	for _, r := range rs {
		covered += r[1] - r[0]
	}
	if covered != 10 {
		t.Fatal("ranges do not cover input")
	}
	if got := splitRanges(2, 8); len(got) != 2 {
		t.Fatalf("more parts than rows: %v", got)
	}
	if got := splitRanges(5, 0); len(got) != 1 {
		t.Fatalf("zero parts: %v", got)
	}
}

func TestCompiledTooManyKeys(t *testing.T) {
	schema := make(vector.Schema, 9)
	cols := make([]*vector.Vector, 9)
	for i := range schema {
		schema[i] = vector.Column{Name: fmt.Sprintf("c%d", i), Type: vector.Int32}
		v := vector.New(vector.Int32, 1)
		v.AppendInt32(int32(i))
		cols[i] = v
	}
	tbl, err := vector.TableFromColumns(schema, cols...)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]core.SortColumn, 9)
	for i := range keys {
		keys[i] = core.SortColumn{Column: i}
	}
	if _, err := NewHyPer(1).Sort(tbl, keys); err == nil {
		t.Fatal("9 keys should exceed the compiled model's limit")
	}
}
