package systems

import (
	"testing"

	"rowsort/internal/core"
	"rowsort/internal/workload"
)

// BenchmarkSystemsMultiKey is a miniature Figure 13 cell: each system
// sorting catalog_sales by four keys.
func BenchmarkSystemsMultiKey(b *testing.B) {
	tbl := workload.CatalogSales(1<<15, 10, 1)
	keys := []core.SortColumn{{Column: 0}, {Column: 1}, {Column: 2}, {Column: 3}}
	for _, sys := range All(2) {
		b.Run(sys.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SortCount(sys, tbl, keys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSystemsStringKeys is a miniature Figure 14 cell.
func BenchmarkSystemsStringKeys(b *testing.B) {
	tbl := workload.Customer(1<<14, 2)
	keys := []core.SortColumn{{Column: 4}, {Column: 5}}
	for _, sys := range All(2) {
		b.Run(sys.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SortCount(sys, tbl, keys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
