package systems

import (
	"rowsort/internal/core"
	"rowsort/internal/vector"
)

// DuckDB is the paper's implementation: the core sorter's full pipeline —
// vectorized conversion to normalized keys and payload rows, thread-local
// radix sort (or pdqsort when string prefixes may tie), cascaded parallel
// merge with Merge Path, and a columnar scan of the result.
type DuckDB struct {
	threads int
}

// NewDuckDB returns the DuckDB model limited to the given thread count.
func NewDuckDB(threads int) *DuckDB { return &DuckDB{threads: threads} }

// Name implements System.
func (d *DuckDB) Name() string { return "DuckDB" }

// Sort implements System.
func (d *DuckDB) Sort(t *vector.Table, keys []core.SortColumn) (*vector.Table, error) {
	return core.SortTable(t, keys, core.Options{Threads: d.threads})
}
