package systems

import (
	"rowsort/internal/core"
	"rowsort/internal/normkey"
	"rowsort/internal/sortalgo"
	"rowsort/internal/vector"
)

// MonetDB models MonetDB's sort as the paper describes it: a columnar
// format throughout, a single-threaded quicksort, and the subsort approach
// for multiple key columns (sort the whole index array by the first column,
// then sort each run of ties by the next). The payload is collected in
// sorted order afterwards. Single-threaded execution is why it trails every
// other system by a wide margin in Figures 12–14.
type MonetDB struct{}

// NewMonetDB returns the MonetDB model (always single-threaded).
func NewMonetDB() *MonetDB { return &MonetDB{} }

// Name implements System.
func (m *MonetDB) Name() string { return "MonetDB" }

// Sort implements System.
func (m *MonetDB) Sort(t *vector.Table, keys []core.SortColumn) (*vector.Table, error) {
	if err := validateSpec(t.Schema, keys); err != nil {
		return nil, err
	}
	cols := materialize(t)
	nkeys := normKeys(t.Schema, keys)
	kcols := keyColumns(cols, keys)

	idx := make([]uint32, t.NumRows())
	for i := range idx {
		idx[i] = uint32(i)
	}
	subsortIndices(idx, nkeys, kcols, 0)
	// MonetDB is modeled single-threaded end to end, including the gather.
	return gather(t.Schema, cols, idx, 1), nil
}

// subsortIndices sorts idx by key column c with a single-column comparator,
// then recurses into runs of ties on the next key column.
func subsortIndices(idx []uint32, nkeys []normkey.SortKey, kcols []*vector.Vector, c int) {
	key, col := nkeys[c:c+1], kcols[c:c+1]
	one := func(a, b uint32) int { return normkey.CompareRows(key, col, int(a), int(b)) }
	sortalgo.Introsort(idx, func(a, b uint32) bool { return one(a, b) < 0 })
	if c+1 == len(nkeys) {
		return
	}
	runStart := 0
	for i := 1; i <= len(idx); i++ {
		if i == len(idx) || one(idx[i], idx[runStart]) != 0 {
			if i-runStart > 1 {
				subsortIndices(idx[runStart:i], nkeys, kcols, c+1)
			}
			runStart = i
		}
	}
}
