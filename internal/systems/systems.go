// Package systems models the five database systems of the paper's
// end-to-end evaluation (Section VII), each implementing the sort pipeline
// the paper attributes to it over a shared in-memory table substrate:
//
//   - DuckDB: row format, normalized keys, radix sort / pdqsort run
//     generation, cascaded Merge Path merge (package core — the paper's
//     contribution).
//   - ClickHouse: columnar throughout; thread-local radix sort for a single
//     integer key, otherwise pdqsort with a tuple-at-a-time comparator;
//     k-way merge; payload gathered through sorted indices.
//   - MonetDB: columnar throughout; single-threaded quicksort with the
//     subsort approach; payload gathered afterwards.
//   - HyPer and Umbra: compiled row-based sorts — tuples materialized as
//     generated structs with statically specialized comparators,
//     thread-local quicksort, parallel merge on pointers, payload collected
//     when the output is read.
//
// The benchmark operation is the paper's optimizer-proof query
// SELECT count(*) FROM (SELECT ... ORDER BY ...): a full sort, a full
// payload materialization, and a tiny result set. (The paper's OFFSET 1
// exists only to defeat real optimizers, which these models do not have.)
package systems

import (
	"fmt"
	"sync"

	"rowsort/internal/core"
	"rowsort/internal/normkey"
	"rowsort/internal/vector"
)

// System is one modeled database engine.
type System interface {
	// Name returns the modeled system's name.
	Name() string
	// Sort fully sorts t by keys and materializes the sorted payload.
	Sort(t *vector.Table, keys []core.SortColumn) (*vector.Table, error)
}

// SortCount executes the benchmark query on a system: a full sort, a full
// payload materialization, and a count of the result's rows.
func SortCount(s System, t *vector.Table, keys []core.SortColumn) (int, error) {
	res, err := s.Sort(t, keys)
	if err != nil {
		return 0, err
	}
	return res.NumRows(), nil
}

// All returns the five systems under benchmark, each limited to the given
// thread count (0 means GOMAXPROCS), in the paper's presentation order.
func All(threads int) []System {
	return []System{
		NewClickHouse(threads),
		NewDuckDB(threads),
		NewHyPer(threads),
		NewMonetDB(),
		NewUmbra(threads),
	}
}

// ByName returns the named system or an error.
func ByName(name string, threads int) (System, error) {
	for _, s := range All(threads) {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("systems: unknown system %q", name)
}

// --- shared helpers -----------------------------------------------------

// materialize gathers the table's chunks into whole-column vectors: the
// sort operator is a pipeline breaker, so every system materializes its
// input first.
func materialize(t *vector.Table) []*vector.Vector {
	cols := make([]*vector.Vector, len(t.Schema))
	for c := range t.Schema {
		cols[c] = t.Column(c)
	}
	return cols
}

// normKeys translates the sort spec into the reference key descriptors.
func normKeys(schema vector.Schema, keys []core.SortColumn) []normkey.SortKey {
	out := make([]normkey.SortKey, len(keys))
	for i, k := range keys {
		order := normkey.Ascending
		if k.Descending {
			order = normkey.Descending
		}
		nulls := normkey.NullsFirst
		if k.NullsLast {
			nulls = normkey.NullsLast
		}
		out[i] = normkey.SortKey{Column: k.Column, Type: schema[k.Column].Type, Order: order, Nulls: nulls}
	}
	return out
}

// keyColumns selects the key columns from materialized columns.
func keyColumns(cols []*vector.Vector, keys []core.SortColumn) []*vector.Vector {
	out := make([]*vector.Vector, len(keys))
	for i, k := range keys {
		out[i] = cols[k.Column]
	}
	return out
}

// gather builds the sorted output table by fetching every payload column
// through the sorted row indices — the columnar payload retrieval step.
// The copy runs vector at a time (one typed kernel pass per column, see
// vector.GatherInto) and output chunks are distributed over threads
// workers; chunks are independent, so the output is identical at any
// thread count. Single-threaded models pass threads=1.
//
//rowsort:pipeline
func gather(schema vector.Schema, cols []*vector.Vector, order []uint32, threads int) *vector.Table {
	out := vector.NewTable(schema)
	n := len(order)
	if n == 0 {
		return out
	}
	numChunks := (n + vector.DefaultVectorSize - 1) / vector.DefaultVectorSize
	chunks := make([]*vector.Chunk, numChunks)
	threads = min(max(threads, 1), numChunks)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ci := w; ci < numChunks; ci += threads {
				start := ci * vector.DefaultVectorSize
				count := min(vector.DefaultVectorSize, n-start)
				chunk := &vector.Chunk{Vectors: make([]*vector.Vector, len(schema))}
				for c := range schema {
					v := vector.NewDense(schema[c].Type, count)
					vector.GatherInto(v, cols[c], order[start:start+count])
					chunk.Vectors[c] = v
				}
				chunks[ci] = chunk
			}
		}(w)
	}
	wg.Wait()
	out.Chunks = chunks
	return out
}

// splitRanges divides [0,n) into at most parts near-equal ranges.
func splitRanges(n, parts int) [][2]int {
	if parts < 1 {
		parts = 1
	}
	var out [][2]int
	for p := 0; p < parts; p++ {
		lo, hi := p*n/parts, (p+1)*n/parts
		if hi > lo {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// validateSpec checks a sort specification against the schema.
func validateSpec(schema vector.Schema, keys []core.SortColumn) error {
	if len(keys) == 0 {
		return fmt.Errorf("systems: sort needs at least one key column")
	}
	for i, k := range keys {
		if k.Column < 0 || k.Column >= len(schema) {
			return fmt.Errorf("systems: key %d column index %d out of range", i, k.Column)
		}
	}
	return nil
}
