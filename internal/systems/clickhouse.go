package systems

import (
	"encoding/binary"
	"runtime"
	"sync"

	"rowsort/internal/core"
	"rowsort/internal/normkey"
	"rowsort/internal/radix"
	"rowsort/internal/sortalgo"
	"rowsort/internal/vector"
)

// ClickHouse models ClickHouse's sort as the paper describes it: a columnar
// format throughout, thread-local sorts that use radix sort when sorting by
// a single integer column and otherwise pdqsort with a tuple-at-a-time
// comparator (JIT compilation trimming some interpretation overhead), a
// k-way merge of the sorted runs, and a columnar payload gather at the end.
// Because it sorts indices over columns, its cache behaviour degrades with
// input size and key count — the effect Figures 12 and 13 show.
type ClickHouse struct {
	threads int
}

// NewClickHouse returns the ClickHouse model limited to the given thread
// count (0 means GOMAXPROCS).
func NewClickHouse(threads int) *ClickHouse { return &ClickHouse{threads: threads} }

// Name implements System.
func (c *ClickHouse) Name() string { return "ClickHouse" }

func (c *ClickHouse) numThreads() int {
	if c.threads > 0 {
		return c.threads
	}
	return runtime.GOMAXPROCS(0)
}

// Sort implements System.
//
//rowsort:pipeline
func (c *ClickHouse) Sort(t *vector.Table, keys []core.SortColumn) (*vector.Table, error) {
	if err := validateSpec(t.Schema, keys); err != nil {
		return nil, err
	}
	cols := materialize(t)
	n := t.NumRows()
	nkeys := normKeys(t.Schema, keys)
	kcols := keyColumns(cols, keys)

	// For a single integer key, precompute the radix encoding once.
	var encCol []byte
	encW := 0
	if singleIntKey(t.Schema, keys) {
		encCol, encW = buildRadixEncoding(nkeys[0], kcols[0])
	}

	// Thread-local sorts over index ranges.
	ranges := splitRanges(n, c.numThreads())
	runs := make([][]uint32, len(ranges))
	var wg sync.WaitGroup
	for ri, rg := range ranges {
		wg.Add(1)
		go func(ri int, lo, hi int) {
			defer wg.Done()
			idx := make([]uint32, hi-lo)
			for i := range idx {
				idx[i] = uint32(lo + i)
			}
			if encCol != nil {
				sortIndicesRadix(idx, encCol, encW)
			} else {
				cmp := jitComparator(nkeys, kcols)
				sortalgo.Pdqsort(idx, func(a, b uint32) bool { return cmp(a, b) < 0 })
			}
			runs[ri] = idx
		}(ri, rg[0], rg[1])
	}
	wg.Wait()

	// K-way merge of the sorted index runs (tuple comparisons cause random
	// access into the columns).
	cmp := jitComparator(nkeys, kcols)
	order := kwayMergeIndices(runs, cmp)
	return gather(t.Schema, cols, order, c.numThreads()), nil
}

// singleIntKey reports whether the spec is one integer-typed key — the case
// where ClickHouse uses radix sort.
func singleIntKey(schema vector.Schema, keys []core.SortColumn) bool {
	if len(keys) != 1 {
		return false
	}
	t := schema[keys[0].Column].Type
	return t >= vector.Int8 && t <= vector.Uint64
}

// buildRadixEncoding encodes the whole key column into per-row normalized
// keys once (vector at a time), returning the encoding and its width.
func buildRadixEncoding(key normkey.SortKey, col *vector.Vector) ([]byte, int) {
	key.Column = 0
	enc, err := normkey.NewEncoder([]normkey.SortKey{key})
	if err != nil { // unreachable: the key was validated
		panic(err)
	}
	keyW := enc.Width()
	out := make([]byte, col.Len()*keyW)
	if err := enc.Encode([]*vector.Vector{col}, out, keyW, 0); err != nil {
		panic(err)
	}
	return out, keyW
}

// sortIndicesRadix sorts indices by one integer key: each row is the
// precomputed normalized key plus the index, sorted with radix sort.
func sortIndicesRadix(idx []uint32, encCol []byte, keyW int) {
	rowW := keyW + 4
	data := make([]byte, len(idx)*rowW)
	for i, ri := range idx {
		copy(data[i*rowW:], encCol[int(ri)*keyW:(int(ri)+1)*keyW])
		binary.LittleEndian.PutUint32(data[i*rowW+keyW:], ri)
	}
	radix.Sort(data, rowW, keyW)
	for i := range idx {
		idx[i] = binary.LittleEndian.Uint32(data[i*rowW+keyW:])
	}
}

// jitComparator models ClickHouse's partially JIT-compiled comparator: the
// per-column compare functions are built once (types resolved up front) and
// then invoked through function pointers per comparison.
func jitComparator(nkeys []normkey.SortKey, kcols []*vector.Vector) func(a, b uint32) int {
	perCol := make([]func(a, b uint32) int, len(nkeys))
	for i := range nkeys {
		key, col := nkeys[i:i+1], kcols[i:i+1]
		perCol[i] = func(a, b uint32) int {
			return normkey.CompareRows(key, col, int(a), int(b))
		}
	}
	return func(a, b uint32) int {
		for _, f := range perCol {
			if r := f(a, b); r != 0 {
				return r
			}
		}
		return 0
	}
}

// kwayMergeIndices merges sorted index runs with a binary heap, stable
// across runs.
func kwayMergeIndices(runs [][]uint32, cmp func(a, b uint32) int) []uint32 {
	type cursor struct {
		run, pos int
	}
	var heap []cursor
	total := 0
	for r := range runs {
		total += len(runs[r])
		if len(runs[r]) > 0 {
			heap = append(heap, cursor{run: r})
		}
	}
	lessCur := func(x, y cursor) bool {
		c := cmp(runs[x.run][x.pos], runs[y.run][y.pos])
		if c != 0 {
			return c < 0
		}
		return x.run < y.run
	}
	down := func(i int) {
		for {
			l := 2*i + 1
			if l >= len(heap) {
				return
			}
			m := l
			if r := l + 1; r < len(heap) && lessCur(heap[r], heap[l]) {
				m = r
			}
			if !lessCur(heap[m], heap[i]) {
				return
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		down(i)
	}
	out := make([]uint32, 0, total)
	for len(heap) > 0 {
		top := heap[0]
		out = append(out, runs[top.run][top.pos])
		top.pos++
		if top.pos < len(runs[top.run]) {
			heap[0] = top
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		down(0)
	}
	return out
}
