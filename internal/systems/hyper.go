package systems

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"rowsort/internal/core"
	"rowsort/internal/normkey"
	"rowsort/internal/sortalgo"
	"rowsort/internal/vector"
)

// HyPer and Umbra model the compiled row-based sorts the paper describes:
// the engine generates a query-specific tuple type and comparison function,
// materializes the key columns into an array of such tuples, sorts
// thread-locally with a quicksort, merges the runs in parallel on pointers
// (no payload moves), and collects the payload only when the output is
// read. In Go the generated tuple is a fixed struct of order-preserving
// 64-bit key slots, and the generated comparator is a single statically
// compiled function — the same "no interpretation, inlinable comparison"
// property JIT code generation provides.
//
// The two systems share the pipeline; per the paper their implementations
// are similar, with Umbra slightly faster. The models differ in the
// thread-local algorithm: HyPer uses introsort, Umbra pattern-defeating
// quicksort.
type compiled struct {
	name    string
	threads int
	alg     sortalgo.Algorithm
}

// NewHyPer returns the HyPer model limited to the given thread count.
func NewHyPer(threads int) System {
	return &compiled{name: "HyPer", threads: threads, alg: sortalgo.AlgIntrosort}
}

// NewUmbra returns the Umbra model limited to the given thread count.
func NewUmbra(threads int) System {
	return &compiled{name: "Umbra", threads: threads, alg: sortalgo.AlgPdq}
}

// Name implements System.
func (h *compiled) Name() string { return h.name }

func (h *compiled) numThreads() int {
	if h.threads > 0 {
		return h.threads
	}
	return runtime.GOMAXPROCS(0)
}

// crowMaxKeys bounds the generated tuple's key slots.
const crowMaxKeys = 8

// crow is the "generated" sort tuple: per-key order-preserving 64-bit
// encodings, per-key NULL ranks, and the row id for payload retrieval.
type crow struct {
	k     [crowMaxKeys]uint64
	nulls [crowMaxKeys]uint8
	id    uint32
}

// keyMeta is the comparator's per-key plan, resolved once at "compile"
// time.
type keyMeta struct {
	desc bool
	str  *vector.Vector // non-nil for Varchar keys: full-string tie-break
}

// Sort implements System.
//
//rowsort:pipeline
func (h *compiled) Sort(t *vector.Table, keys []core.SortColumn) (*vector.Table, error) {
	if err := validateSpec(t.Schema, keys); err != nil {
		return nil, err
	}
	if len(keys) > crowMaxKeys {
		return nil, fmt.Errorf("systems: %s model supports at most %d key columns", h.name, crowMaxKeys)
	}
	cols := materialize(t)
	nkeys := normKeys(t.Schema, keys)
	kcols := keyColumns(cols, keys)
	n := t.NumRows()

	rows := buildCrows(nkeys, kcols, n)
	meta := make([]keyMeta, len(nkeys))
	for i, nk := range nkeys {
		meta[i].desc = nk.Order == normkey.Descending
		if nk.Type == vector.Varchar {
			meta[i].str = kcols[i]
		}
	}
	numKeys := len(nkeys)
	less := func(a, b crow) bool { return compareCrows(&a, &b, meta, numKeys) < 0 }

	// Thread-local quicksorts.
	ranges := splitRanges(n, h.numThreads())
	runs := make([][]crow, len(ranges))
	var wg sync.WaitGroup
	for ri, rg := range ranges {
		wg.Add(1)
		go func(ri, lo, hi int) {
			defer wg.Done()
			run := rows[lo:hi]
			sortalgo.SortSlice(h.alg, run, less)
			runs[ri] = run
		}(ri, rg[0], rg[1])
	}
	wg.Wait()

	// Parallel k-way merge on the tuples (payload untouched).
	merged := parallelKWayCrows(runs, meta, numKeys, h.numThreads())

	// Payload is physically collected only now, when the output is read —
	// with the shared vectorized gather kernels, in parallel.
	order := make([]uint32, n)
	for i := range merged {
		order[i] = merged[i].id
	}
	return gather(t.Schema, cols, order, h.numThreads()), nil
}

// buildCrows materializes the generated tuples, one key column at a time.
func buildCrows(nkeys []normkey.SortKey, kcols []*vector.Vector, n int) []crow {
	rows := make([]crow, n)
	for i := range rows {
		rows[i].id = uint32(i)
	}
	for c, nk := range nkeys {
		col := kcols[c]
		nullRank := uint8(0)
		if nk.Nulls == normkey.NullsLast {
			nullRank = 2
		}
		for r := 0; r < n; r++ {
			if !col.Valid(r) {
				rows[r].nulls[c] = nullRank
				continue
			}
			rows[r].nulls[c] = 1
			rows[r].k[c] = encodeSlot(nk.Type, col, r)
		}
	}
	return rows
}

// encodeSlot maps a value to a uint64 whose unsigned order matches the
// value's order (ascending).
func encodeSlot(t vector.Type, col *vector.Vector, r int) uint64 {
	switch t {
	case vector.Bool:
		if col.Bools()[r] {
			return 1
		}
		return 0
	case vector.Int8:
		return uint64(col.Int8s()[r]) ^ (1 << 63)
	case vector.Int16:
		return uint64(col.Int16s()[r]) ^ (1 << 63)
	case vector.Int32:
		return uint64(col.Int32s()[r]) ^ (1 << 63)
	case vector.Int64:
		return uint64(col.Int64s()[r]) ^ (1 << 63)
	case vector.Uint8:
		return uint64(col.Uint8s()[r])
	case vector.Uint16:
		return uint64(col.Uint16s()[r])
	case vector.Uint32:
		return uint64(col.Uint32s()[r])
	case vector.Uint64:
		return col.Uint64s()[r]
	case vector.Float32:
		return encodeFloatSlot(float64(col.Float32s()[r]))
	case vector.Float64:
		return encodeFloatSlot(col.Float64s()[r])
	case vector.Varchar:
		// Big-endian 8-byte prefix; ties resolved against the full string.
		s := col.Strings()[r]
		var v uint64
		for i := 0; i < 8; i++ {
			v <<= 8
			if i < len(s) {
				v |= uint64(s[i])
			}
		}
		return v
	}
	return 0
}

func encodeFloatSlot(f float64) uint64 {
	if f != f {
		return math.MaxUint64 // NaN greatest
	}
	if f == 0 {
		f = 0
	}
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		return ^bits
	}
	return bits | 1<<63
}

// compareCrows is the "generated" comparator: a single function, one
// branch per key column, no indirect calls except the rare string
// tie-break.
func compareCrows(a, b *crow, meta []keyMeta, numKeys int) int {
	for c := 0; c < numKeys; c++ {
		if a.nulls[c] != b.nulls[c] {
			if a.nulls[c] < b.nulls[c] {
				return -1
			}
			return 1
		}
		if a.nulls[c] != 1 {
			continue // both NULL on this key
		}
		va, vb := a.k[c], b.k[c]
		if va != vb {
			r := 1
			if va < vb {
				r = -1
			}
			if meta[c].desc {
				r = -r
			}
			return r
		}
		if s := meta[c].str; s != nil {
			sa, sb := s.Strings()[a.id], s.Strings()[b.id]
			if sa != sb {
				r := 1
				if sa < sb {
					r = -1
				}
				if meta[c].desc {
					r = -r
				}
				return r
			}
		}
	}
	return 0
}

// parallelKWayCrows merges sorted tuple runs. The output is split into p
// partitions by value splitters; each partition is k-way merged
// independently and in parallel.
//
//rowsort:pipeline
func parallelKWayCrows(runs [][]crow, meta []keyMeta, numKeys, p int) []crow {
	total := 0
	longest := 0
	for i, r := range runs {
		total += len(r)
		if len(r) > len(runs[longest]) {
			longest = i
		}
	}
	out := make([]crow, total)
	if total == 0 {
		return out
	}
	if p < 2 || total < 4*p || len(runs[longest]) < p {
		kwayMergeCrows(out, runs, meta, numKeys)
		return out
	}

	// Splitters: p-quantiles of the longest run.
	cmp := func(a, b *crow) int { return compareCrows(a, b, meta, numKeys) }
	type cut struct{ starts []int }
	prev := cut{starts: make([]int, len(runs))}
	outPos := 0
	var wg sync.WaitGroup
	for part := 1; part <= p; part++ {
		var cur cut
		if part == p {
			cur.starts = make([]int, len(runs))
			for i, r := range runs {
				cur.starts[i] = len(r)
			}
		} else {
			splitter := runs[longest][part*len(runs[longest])/p]
			cur.starts = make([]int, len(runs))
			for i, r := range runs {
				// Elements <= splitter go to the left partitions.
				cur.starts[i] = sort.Search(len(r), func(j int) bool {
					return cmp(&r[j], &splitter) > 0
				})
			}
		}
		size := 0
		subRuns := make([][]crow, len(runs))
		for i, r := range runs {
			subRuns[i] = r[prev.starts[i]:cur.starts[i]]
			size += len(subRuns[i])
		}
		dst := out[outPos : outPos+size]
		outPos += size
		wg.Add(1)
		go func(dst []crow, subRuns [][]crow) {
			defer wg.Done()
			kwayMergeCrows(dst, subRuns, meta, numKeys)
		}(dst, subRuns)
		prev = cur
	}
	wg.Wait()
	return out
}

// kwayMergeCrows merges sorted tuple runs into dst with a binary heap.
func kwayMergeCrows(dst []crow, runs [][]crow, meta []keyMeta, numKeys int) {
	type cursor struct{ run, pos int }
	var heap []cursor
	for r := range runs {
		if len(runs[r]) > 0 {
			heap = append(heap, cursor{run: r})
		}
	}
	lessCur := func(x, y cursor) bool {
		c := compareCrows(&runs[x.run][x.pos], &runs[y.run][y.pos], meta, numKeys)
		if c != 0 {
			return c < 0
		}
		return x.run < y.run
	}
	down := func(i int) {
		for {
			l := 2*i + 1
			if l >= len(heap) {
				return
			}
			m := l
			if r := l + 1; r < len(heap) && lessCur(heap[r], heap[l]) {
				m = r
			}
			if !lessCur(heap[m], heap[i]) {
				return
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		down(i)
	}
	k := 0
	for len(heap) > 0 {
		top := heap[0]
		dst[k] = runs[top.run][top.pos]
		k++
		top.pos++
		if top.pos < len(runs[top.run]) {
			heap[0] = top
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		down(0)
	}
}
