// Package rowsort's top-level benchmarks regenerate every table and figure
// of the paper through the bench harness (one Benchmark per experiment id,
// at tiny scale so `go test -bench=.` stays fast — use cmd/sortbench with
// -scale small|paper for the real runs), plus ablation benchmarks for the
// design choices called out in DESIGN.md.
package rowsort

import (
	"fmt"
	"io"
	"testing"

	"rowsort/internal/bench"
	"rowsort/internal/core"
	"rowsort/internal/mergepath"
	"rowsort/internal/radix"
	"rowsort/internal/row"
	"rowsort/internal/rowcmp"
	"rowsort/internal/vector"
	"rowsort/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := bench.Config{Scale: bench.ScaleTiny, Threads: 2, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)    { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)    { benchExperiment(b, "table4") }
func BenchmarkFig2(b *testing.B)      { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)      { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)      { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)      { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)      { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)      { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)      { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)     { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)     { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)     { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)     { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)     { benchExperiment(b, "fig14") }
func BenchmarkCompModel(b *testing.B) { benchExperiment(b, "compmodel") }

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationRadixSkip measures the single-bucket skip optimization
// on keys with a long shared prefix (where it matters most).
func BenchmarkAblationRadixSkip(b *testing.B) {
	const n, rowW, keyW = 1 << 15, 16, 12
	rng := workload.NewRNG(1)
	base := make([]byte, n*rowW)
	for i := 0; i < n; i++ {
		// 8 constant bytes, then 4 random: 8 skippable MSD levels.
		copy(base[i*rowW:], []byte{9, 9, 9, 9, 9, 9, 9, 9})
		for j := 8; j < keyW; j++ {
			base[i*rowW+j] = byte(rng.Intn(256))
		}
	}
	for _, opt := range []struct {
		name string
		o    radix.Options
	}{
		{"skip-on", radix.Options{}},
		{"skip-off", radix.Options{NoSingleBucketSkip: true}},
	} {
		b.Run(opt.name, func(b *testing.B) {
			data := make([]byte, len(base))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(data, base)
				radix.SortOpts(data, rowW, keyW, opt.o)
			}
		})
	}
}

// BenchmarkAblationLSDvsMSD sweeps key width to expose the LSD/MSD
// crossover behind the paper's "LSD when keyWidth <= 4" rule.
func BenchmarkAblationLSDvsMSD(b *testing.B) {
	const n = 1 << 15
	rng := workload.NewRNG(2)
	for _, keyW := range []int{2, 4, 8, 16} {
		rowW := (keyW + 4 + 7) &^ 7
		base := make([]byte, n*rowW)
		for i := 0; i < n*rowW; i++ {
			base[i] = byte(rng.Intn(256))
		}
		for _, variant := range []struct {
			name string
			o    radix.Options
		}{
			{"lsd", radix.Options{ForceLSD: true}},
			{"msd", radix.Options{ForceMSD: true}},
		} {
			b.Run(fmt.Sprintf("keyW=%d/%s", keyW, variant.name), func(b *testing.B) {
				data := make([]byte, len(base))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					copy(data, base)
					radix.SortOpts(data, rowW, keyW, variant.o)
				}
			})
		}
	}
}

// BenchmarkAblationMergePath compares the final 2-run merge with and
// without Merge Path parallelism — the phase the algorithm exists for.
func BenchmarkAblationMergePath(b *testing.B) {
	const n = 1 << 17
	cols := workload.Dist{Random: true}.Generate(n, 1, 3)
	data, rowW, keyW := rowcmp.EncodeNormalized(cols)
	half := (n / 2) * rowW
	radix.Sort(data[:half], rowW, keyW)
	radix.Sort(data[half:], rowW, keyW)
	a := mergepath.Run{Data: data[:half], Width: rowW}
	c := mergepath.Run{Data: data[half:], Width: rowW}
	dst := make([]byte, len(data))
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("threads=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mergepath.ParallelMerge(dst, a, c, nil, p)
			}
		})
	}
}

// BenchmarkAblationPrefixLen sweeps the normalized string prefix length:
// short prefixes shrink keys but force more tie-breaks.
func BenchmarkAblationPrefixLen(b *testing.B) {
	tbl := workload.Customer(20_000, 4)
	for _, prefix := range []int{2, 4, 8, 12, 16} {
		b.Run(fmt.Sprintf("prefix=%d", prefix), func(b *testing.B) {
			keys := []core.SortColumn{{Column: 4, PrefixLen: prefix}, {Column: 5, PrefixLen: prefix}}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.SortTable(tbl, keys, core.Options{Threads: 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAlignment measures the 8-byte row alignment the paper
// adopted for memcpy performance against packed rows.
func BenchmarkAblationAlignment(b *testing.B) {
	types := []vector.Type{vector.Int32, vector.Int16, vector.Int8}
	tbl := workload.CatalogSales(1<<14, 10, 5)
	chunk := tbl.Chunks[0]
	// Re-type the first three columns to the layout under test.
	vecs := []*vector.Vector{
		vector.New(vector.Int32, chunk.Len()),
		vector.New(vector.Int16, chunk.Len()),
		vector.New(vector.Int8, chunk.Len()),
	}
	for i := 0; i < chunk.Len(); i++ {
		vecs[0].AppendInt32(int32(i))
		vecs[1].AppendInt16(int16(i))
		vecs[2].AppendInt8(int8(i))
	}
	for _, align := range []int{1, 8} {
		b.Run(fmt.Sprintf("align=%d", align), func(b *testing.B) {
			layout := row.NewLayoutAligned(types, align)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rs := row.NewRowSet(layout)
				if err := rs.AppendChunk(vecs); err != nil {
					b.Fatal(err)
				}
				rs.GatherChunk(0, rs.Len())
			}
		})
	}
}

// BenchmarkAblationGather isolates the Result scan — the sorted rows are
// already materialized, so the benchmark measures only the NSM→DSM gather:
// the scalar value-at-a-time reference, the typed vectorized kernels on one
// thread, and the parallel chunk-partitioned scan.
func BenchmarkAblationGather(b *testing.B) {
	tbl := workload.Customer(1<<16, 9)
	keys := []core.SortColumn{{Column: 4}, {Column: 5}}
	s, err := core.NewSorter(tbl.Schema, keys, core.Options{Threads: 4})
	if err != nil {
		b.Fatal(err)
	}
	sink := s.NewSink()
	for _, c := range tbl.Chunks {
		if err := sink.Append(c); err != nil {
			b.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		b.Fatal(err)
	}
	if err := s.Finalize(); err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		name string
		run  func() (*vector.Table, error)
	}{
		{"scalar", s.ResultScalar},
		{"vectorized", func() (*vector.Table, error) { return s.ResultThreads(1) }},
		{"parallel", func() (*vector.Table, error) { return s.ResultThreads(4) }},
	} {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := v.run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRunSize sweeps the thread-local run size: the
// run-generation vs merge trade-off of the Section II model.
func BenchmarkAblationRunSize(b *testing.B) {
	cols := workload.Dist{Random: true}.Generate(1<<16, 2, 6)
	tbl := workload.UintColumnsTable(cols)
	keys := []core.SortColumn{{Column: 0}, {Column: 1}}
	for _, runSize := range []int{1 << 12, 1 << 14, 1 << 16} {
		b.Run(fmt.Sprintf("runSize=%d", runSize), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.SortTable(tbl, keys, core.Options{Threads: 4, RunSize: runSize}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAlgorithmChoice compares the paper's radix-by-default
// run generation against forcing pdqsort (the Future Work heuristic
// question).
func BenchmarkAblationAlgorithmChoice(b *testing.B) {
	for _, dist := range []workload.Dist{{Random: true, Name: "Random"}, {P: 0.9, Name: "Correlated0.90"}} {
		cols := dist.Generate(1<<16, 4, 7)
		tbl := workload.UintColumnsTable(cols)
		keys := []core.SortColumn{{Column: 0}, {Column: 1}, {Column: 2}, {Column: 3}}
		for _, force := range []bool{false, true} {
			name := dist.Name + "/radix"
			if force {
				name = dist.Name + "/pdqsort"
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.SortTable(tbl, keys, core.Options{Threads: 2, ForcePdqsort: force}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationHybridPdq measures the Future Work hybrid: MSD radix
// recursing into pdqsort for mid-size buckets.
func BenchmarkAblationHybridPdq(b *testing.B) {
	const n, rowW, keyW = 1 << 16, 16, 12
	rng := workload.NewRNG(8)
	base := make([]byte, n*rowW)
	for i := range base {
		base[i] = byte(rng.Intn(256))
	}
	for _, cutoff := range []int{0, 256, 2048} {
		name := fmt.Sprintf("pdqCutoff=%d", cutoff)
		b.Run(name, func(b *testing.B) {
			data := make([]byte, len(base))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(data, base)
				radix.SortOpts(data, rowW, keyW, radix.Options{PdqCutoff: cutoff})
			}
		})
	}
}

// BenchmarkAblationAdaptive measures the Future Work algorithm-choice
// heuristic against the paper's fixed rule on inputs where they disagree.
func BenchmarkAblationAdaptive(b *testing.B) {
	n := 1 << 16
	sortedVals := make([]uint32, n)
	for i := range sortedVals {
		sortedVals[i] = uint32(i)
	}
	tbl := workload.UintColumnsTable([][]uint32{sortedVals})
	keys := []core.SortColumn{{Column: 0}}
	for _, adaptive := range []bool{false, true} {
		name := "fixed-rule"
		if adaptive {
			name = "adaptive"
		}
		b.Run("presorted/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.SortTable(tbl, keys, core.Options{Threads: 1, Adaptive: adaptive}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
