module rowsort

go 1.24
