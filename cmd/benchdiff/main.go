// Command benchdiff compares two perf-trajectory reports (BENCH_sort.json,
// written by `sortbench -exp trajectory -json ...`) and exits non-zero when
// the new report regresses beyond the noise thresholds — the CI gate that
// keeps the committed baseline honest.
//
// Usage:
//
//	benchdiff [flags] base.json new.json
//
// Timing metrics (wall time, and peak resident bytes, which depends on
// scheduling) are gated by -time-threshold and -peak-threshold as relative
// slack; setting either to 0 disables that gate. Byte and count metrics of
// workloads the report marks deterministic (spill bytes, normalized-key
// bytes, runs generated, merge passes) are exact functions of the code, so
// they get the much tighter -bytes-threshold, and row counts must match
// exactly. Non-deterministic workloads (budgeted sorts, where spilling is
// pressure-driven) are gated on time only.
package main

import (
	"flag"
	"fmt"
	"os"

	"rowsort/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		timeThresh  = flag.Float64("time-threshold", 0.30, "allowed relative wall-time increase before failing (0 disables)")
		peakThresh  = flag.Float64("peak-threshold", 0.50, "allowed relative peak-resident increase before failing (0 disables)")
		bytesThresh = flag.Float64("bytes-threshold", 0.02, "allowed relative increase of deterministic byte/count metrics before failing")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] base.json new.json")
		return 2
	}
	base, err := bench.ReadTrajectoryJSON(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}
	next, err := bench.ReadTrajectoryJSON(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}
	regs, err := bench.DiffTrajectory(base, next, bench.DiffThresholds{
		Time: *timeThresh, Peak: *peakThresh, Bytes: *bytesThresh,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}
	if len(regs) == 0 {
		fmt.Printf("benchdiff: %d workloads within thresholds (time %+.0f%%, peak %+.0f%%, bytes %+.1f%%)\n",
			len(next.Workloads), *timeThresh*100, *peakThresh*100, *bytesThresh*100)
		return 0
	}
	fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) vs %s:\n", len(regs), flag.Arg(0))
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "  %s\n", r)
	}
	return 1
}
