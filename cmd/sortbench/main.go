// Command sortbench regenerates the tables and figures of "These Rows Are
// Made for Sorting and That's Just What We'll Do" (ICDE 2023).
//
// Usage:
//
//	sortbench -list
//	sortbench -exp fig9
//	sortbench -exp all -scale paper -threads 16
//	sortbench -exp fig12 -cpuprofile cpu.out -memprofile mem.out
//	sortbench -exp phases -trace trace.json -metrics -
//
// Each experiment prints the paper-style rows or relative-runtime grids to
// stdout. The -scale flag trades fidelity for runtime: "tiny" finishes in
// seconds, "small" (the default) in a few minutes, and "paper" uses the
// paper's input sizes where memory allows. The -cpuprofile and -memprofile
// flags write pprof profiles for `go tool pprof`, so hot-path work (run
// generation, merge, the gather kernels) is directly measurable.
//
// The -trace flag records phase spans of every instrumented sort and writes
// them as Chrome trace_event JSON — open the file in chrome://tracing or
// https://ui.perfetto.dev to see run generation, spill, merge and gather
// workers on a timeline. The -metrics flag dumps the same run's counters in
// Prometheus text format to a file ("-" for stderr), and -phases appends a
// per-phase span table to experiments that sort end to end.
//
// The -mem flag budgets the experiments' sorts (bytes): over-budget sorts
// degrade by adaptively spilling instead of growing, and the "memory"
// experiment reports that single budget instead of its default sweep of
// 1/2, 1/4 and 1/8 of the measured unlimited peak.
//
// The -serve flag mounts the live observability plane on an HTTP listener:
// /debug/rowsort/ is an HTML index of every sort in flight (per-phase
// progress, ETA, memory pressure, a phase waterfall), /debug/rowsort/run?id=
// the JSON snapshot of one run, /debug/rowsort/trace?id= its Chrome trace
// once finished, and /metrics the Prometheus exposition. With -exp the
// experiments' sorts appear there as they run (the server stays up after
// the experiment until interrupted); without -exp, sortbench loops a
// budgeted forced-spill demo sort until interrupted so there is always
// something live to look at:
//
//	sortbench -serve :6060
//
// The -json flag makes the trajectory experiment write its machine-readable
// report (BENCH_sort.json) there; `benchdiff base.json new.json` compares
// two such reports and fails on regression.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"rowsort/internal/bench"
	"rowsort/internal/core"
	"rowsort/internal/obs"
	"rowsort/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp        = flag.String("exp", "", "experiment id to run (see -list), or \"all\"")
		scale      = flag.String("scale", "small", "input scale: tiny, small or paper")
		threads    = flag.Int("threads", 0, "thread budget for parallel experiments (0 = GOMAXPROCS)")
		reps       = flag.Int("reps", 0, "repetitions per measurement, median reported (0 = scale default)")
		seed       = flag.Uint64("seed", 42, "workload generation seed")
		list       = flag.Bool("list", false, "list experiments and exit")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceFile  = flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file")
		metrics    = flag.String("metrics", "", "write Prometheus-text phase metrics to this file (\"-\" = stderr)")
		phases     = flag.Bool("phases", false, "print per-phase span tables after end-to-end experiments")
		memLimit   = flag.Int64("mem", 0, "memory budget in bytes for the experiments' sorts (0 = unlimited; the \"memory\" experiment measures this single budget instead of its sweep)")
		serve      = flag.String("serve", "", "serve the live observability plane (/debug/rowsort/, /metrics) on this address, e.g. :6060; without -exp, loops a forced-spill demo sort until interrupted")
		jsonOut    = flag.String("json", "", "write the trajectory experiment's machine-readable report (BENCH_sort.json) to this file")
	)
	flag.Parse()

	if *list || (*exp == "" && *serve == "") {
		fmt.Println("experiments:")
		for _, e := range bench.Registry() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		fmt.Printf("  %-10s %s\n", "all", "run every experiment in order")
		if !*list {
			return 2
		}
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sortbench: creating CPU profile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sortbench: starting CPU profile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "sortbench: closing CPU profile: %v\n", err)
			}
		}()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sortbench: creating heap profile: %v\n", err)
			return
		}
		runtime.GC() // up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sortbench: writing heap profile: %v\n", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "sortbench: closing heap profile: %v\n", err)
		}
	}()

	cfg := bench.Config{
		Scale:          bench.Scale(*scale),
		Threads:        *threads,
		Reps:           *reps,
		Seed:           *seed,
		MemoryLimit:    *memLimit,
		PhaseBreakdown: *phases,
		BenchJSON:      *jsonOut,
	}
	if *traceFile != "" || *metrics != "" {
		cfg.Telemetry = obs.NewRecorder()
		cfg.Telemetry.PublishExpvar("rowsort")
	}

	ctx := context.Background()
	if *serve != "" {
		reg := obs.NewRegistry(obs.DefaultKeepDone)
		cfg.Registry = reg
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sortbench: -serve: %v\n", err)
			return 1
		}
		srv := &http.Server{Handler: reg.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "sortbench: serving http://%s/debug/rowsort/ and /metrics (interrupt to stop)\n", ln.Addr())
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
		defer stop()
	}

	if *exp == "" {
		// Serve-only mode: keep a forced-spill sort in flight so the
		// endpoints always have a live run to show.
		if err := demoLoop(ctx, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "sortbench: %v\n", err)
			return 1
		}
		return 0
	}

	var err error
	if *exp == "all" {
		err = bench.RunAll(os.Stdout, cfg)
	} else {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "sortbench: unknown experiment %q (use -list)\n", *exp)
			return 2
		}
		fmt.Printf("=== %s: %s ===\n\n", e.ID, e.Title)
		err = e.Run(os.Stdout, cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sortbench: %v\n", err)
		return 1
	}
	if *serve != "" {
		fmt.Fprintf(os.Stderr, "sortbench: experiment done; still serving completed-run snapshots (interrupt to exit)\n")
		<-ctx.Done()
	}

	if *traceFile != "" {
		if err := writeTrace(cfg.Telemetry, *traceFile); err != nil {
			fmt.Fprintf(os.Stderr, "sortbench: %v\n", err)
			return 1
		}
	}
	if *metrics != "" {
		if err := writeMetrics(cfg.Telemetry, *metrics); err != nil {
			fmt.Fprintf(os.Stderr, "sortbench: %v\n", err)
			return 1
		}
	}
	return 0
}

// demoLoop sorts a budgeted TPC-DS catalog_sales workload over and over
// until ctx is cancelled, registering every run with cfg.Registry. The
// budget forces pressure-driven spilling and a multi-pass external merge,
// so the served endpoints show every phase and counter moving.
func demoLoop(ctx context.Context, cfg bench.Config) error {
	n := 1 << 20
	switch cfg.Scale {
	case bench.ScaleTiny:
		n = 1 << 14
	case bench.ScalePaper:
		n = 1 << 22
	}
	limit := cfg.MemoryLimit
	if limit <= 0 {
		limit = int64(n) * 8
	}
	tbl := workload.CatalogSales(n, 10, cfg.Seed)
	keys := []core.SortColumn{{Column: 0}, {Column: 1}, {Column: 2}}
	for i := 1; ctx.Err() == nil; i++ {
		opt := core.Options{
			Threads:     cfg.Threads,
			MemoryLimit: limit,
			Registry:    cfg.Registry,
			RunLabel:    fmt.Sprintf("demo-%d", i),
			Telemetry:   obs.NewRecorder(), // per-run recorder: each run gets its own waterfall and trace
		}
		if _, _, err := core.SortTableStats(tbl, keys, opt); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
		case <-time.After(time.Second):
		}
	}
	return nil
}

func writeTrace(rec *obs.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating trace file: %w", err)
	}
	if err := rec.WriteTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("writing trace: %w", err)
	}
	return f.Close()
}

func writeMetrics(rec *obs.Recorder, path string) error {
	if path == "-" {
		return rec.WritePrometheus(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating metrics file: %w", err)
	}
	if err := rec.WritePrometheus(f); err != nil {
		f.Close()
		return fmt.Errorf("writing metrics: %w", err)
	}
	return f.Close()
}
