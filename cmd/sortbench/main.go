// Command sortbench regenerates the tables and figures of "These Rows Are
// Made for Sorting and That's Just What We'll Do" (ICDE 2023).
//
// Usage:
//
//	sortbench -list
//	sortbench -exp fig9
//	sortbench -exp all -scale paper -threads 16
//	sortbench -exp fig12 -cpuprofile cpu.out -memprofile mem.out
//	sortbench -exp phases -trace trace.json -metrics -
//
// Each experiment prints the paper-style rows or relative-runtime grids to
// stdout. The -scale flag trades fidelity for runtime: "tiny" finishes in
// seconds, "small" (the default) in a few minutes, and "paper" uses the
// paper's input sizes where memory allows. The -cpuprofile and -memprofile
// flags write pprof profiles for `go tool pprof`, so hot-path work (run
// generation, merge, the gather kernels) is directly measurable.
//
// The -trace flag records phase spans of every instrumented sort and writes
// them as Chrome trace_event JSON — open the file in chrome://tracing or
// https://ui.perfetto.dev to see run generation, spill, merge and gather
// workers on a timeline. The -metrics flag dumps the same run's counters in
// Prometheus text format to a file ("-" for stderr), and -phases appends a
// per-phase span table to experiments that sort end to end.
//
// The -mem flag budgets the experiments' sorts (bytes): over-budget sorts
// degrade by adaptively spilling instead of growing, and the "memory"
// experiment reports that single budget instead of its default sweep of
// 1/2, 1/4 and 1/8 of the measured unlimited peak.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"rowsort/internal/bench"
	"rowsort/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp        = flag.String("exp", "", "experiment id to run (see -list), or \"all\"")
		scale      = flag.String("scale", "small", "input scale: tiny, small or paper")
		threads    = flag.Int("threads", 0, "thread budget for parallel experiments (0 = GOMAXPROCS)")
		reps       = flag.Int("reps", 0, "repetitions per measurement, median reported (0 = scale default)")
		seed       = flag.Uint64("seed", 42, "workload generation seed")
		list       = flag.Bool("list", false, "list experiments and exit")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceFile  = flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file")
		metrics    = flag.String("metrics", "", "write Prometheus-text phase metrics to this file (\"-\" = stderr)")
		phases     = flag.Bool("phases", false, "print per-phase span tables after end-to-end experiments")
		memLimit   = flag.Int64("mem", 0, "memory budget in bytes for the experiments' sorts (0 = unlimited; the \"memory\" experiment measures this single budget instead of its sweep)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range bench.Registry() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		fmt.Printf("  %-10s %s\n", "all", "run every experiment in order")
		if !*list {
			return 2
		}
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sortbench: creating CPU profile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sortbench: starting CPU profile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "sortbench: closing CPU profile: %v\n", err)
			}
		}()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sortbench: creating heap profile: %v\n", err)
			return
		}
		runtime.GC() // up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sortbench: writing heap profile: %v\n", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "sortbench: closing heap profile: %v\n", err)
		}
	}()

	cfg := bench.Config{
		Scale:          bench.Scale(*scale),
		Threads:        *threads,
		Reps:           *reps,
		Seed:           *seed,
		MemoryLimit:    *memLimit,
		PhaseBreakdown: *phases,
	}
	if *traceFile != "" || *metrics != "" {
		cfg.Telemetry = obs.NewRecorder()
		cfg.Telemetry.PublishExpvar("rowsort")
	}

	var err error
	if *exp == "all" {
		err = bench.RunAll(os.Stdout, cfg)
	} else {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "sortbench: unknown experiment %q (use -list)\n", *exp)
			return 2
		}
		fmt.Printf("=== %s: %s ===\n\n", e.ID, e.Title)
		err = e.Run(os.Stdout, cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sortbench: %v\n", err)
		return 1
	}

	if *traceFile != "" {
		if err := writeTrace(cfg.Telemetry, *traceFile); err != nil {
			fmt.Fprintf(os.Stderr, "sortbench: %v\n", err)
			return 1
		}
	}
	if *metrics != "" {
		if err := writeMetrics(cfg.Telemetry, *metrics); err != nil {
			fmt.Fprintf(os.Stderr, "sortbench: %v\n", err)
			return 1
		}
	}
	return 0
}

func writeTrace(rec *obs.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating trace file: %w", err)
	}
	if err := rec.WriteTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("writing trace: %w", err)
	}
	return f.Close()
}

func writeMetrics(rec *obs.Recorder, path string) error {
	if path == "-" {
		return rec.WritePrometheus(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating metrics file: %w", err)
	}
	if err := rec.WritePrometheus(f); err != nil {
		f.Close()
		return fmt.Errorf("writing metrics: %w", err)
	}
	return f.Close()
}
