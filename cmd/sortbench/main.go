// Command sortbench regenerates the tables and figures of "These Rows Are
// Made for Sorting and That's Just What We'll Do" (ICDE 2023).
//
// Usage:
//
//	sortbench -list
//	sortbench -exp fig9
//	sortbench -exp all -scale paper -threads 16
//
// Each experiment prints the paper-style rows or relative-runtime grids to
// stdout. The -scale flag trades fidelity for runtime: "tiny" finishes in
// seconds, "small" (the default) in a few minutes, and "paper" uses the
// paper's input sizes where memory allows.
package main

import (
	"flag"
	"fmt"
	"os"

	"rowsort/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id to run (see -list), or \"all\"")
		scale   = flag.String("scale", "small", "input scale: tiny, small or paper")
		threads = flag.Int("threads", 0, "thread budget for parallel experiments (0 = GOMAXPROCS)")
		reps    = flag.Int("reps", 0, "repetitions per measurement, median reported (0 = scale default)")
		seed    = flag.Uint64("seed", 42, "workload generation seed")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range bench.Registry() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		fmt.Printf("  %-10s %s\n", "all", "run every experiment in order")
		if !*list {
			os.Exit(2)
		}
		return
	}

	cfg := bench.Config{
		Scale:   bench.Scale(*scale),
		Threads: *threads,
		Reps:    *reps,
		Seed:    *seed,
	}

	var err error
	if *exp == "all" {
		err = bench.RunAll(os.Stdout, cfg)
	} else {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "sortbench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		fmt.Printf("=== %s: %s ===\n\n", e.ID, e.Title)
		err = e.Run(os.Stdout, cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sortbench: %v\n", err)
		os.Exit(1)
	}
}
