package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rowsort/internal/vector"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "in.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSortsByStringAndNumber(t *testing.T) {
	path := writeTemp(t, "name,score\nbob,3\nalice,10\ncarol,3\n")
	var sb strings.Builder
	if err := run(path, "score:desc,name", 1, 0, "", "", nil, &sb); err != nil {
		t.Fatal(err)
	}
	want := "name,score\nalice,10\nbob,3\ncarol,3\n"
	if sb.String() != want {
		t.Fatalf("got:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestRunNullsAndFloats(t *testing.T) {
	// Note: a NULL needs a multi-column file — encoding/csv skips fully
	// blank lines, so a single empty column cannot express one.
	path := writeTemp(t, "id,v\nx,2.5\ny,\nz,-1\n")
	var sb strings.Builder
	if err := run(path, "v:nullslast", 1, 0, "", "", nil, &sb); err != nil {
		t.Fatal(err)
	}
	want := "id,v\nz,-1\nx,2.5\ny,\n"
	if sb.String() != want {
		t.Fatalf("got:\n%q", sb.String())
	}
}

func TestRunWritesTraceAndMetrics(t *testing.T) {
	path := writeTemp(t, "name,score\nbob,3\nalice,10\ncarol,3\n")
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.txt")
	var sb strings.Builder
	if err := run(path, "score:desc", 1, 0, tracePath, metricsPath, nil, &sb); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	prom, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "rowsort_rows_ingested_total 3") {
		t.Fatalf("metrics missing row count:\n%s", prom)
	}
}

func TestInferType(t *testing.T) {
	recs := [][]string{{"1", "1.5", "x", ""}, {"-2", "2", "3", ""}}
	if inferType(recs, 0) != vector.Int64 {
		t.Fatal("ints should infer Int64")
	}
	if inferType(recs, 1) != vector.Float64 {
		t.Fatal("mixed numerics should infer Float64")
	}
	if inferType(recs, 2) != vector.Varchar {
		t.Fatal("strings should infer Varchar")
	}
	if inferType(recs, 3) != vector.Varchar {
		t.Fatal("all-empty should infer Varchar")
	}
}

func TestParseKeys(t *testing.T) {
	schema := vector.Schema{{Name: "a", Type: vector.Int64}, {Name: "b", Type: vector.Varchar}}
	keys, err := parseKeys("b:desc:nullslast, a:asc", schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0].Column != 1 || !keys[0].Descending || !keys[0].NullsLast {
		t.Fatalf("keys = %+v", keys)
	}
	if keys[1].Column != 0 || keys[1].Descending {
		t.Fatalf("keys = %+v", keys)
	}
	for _, bad := range []string{"zzz", "a:sideways", ""} {
		if _, err := parseKeys(bad, schema); err == nil {
			t.Errorf("parseKeys(%q) should fail", bad)
		}
	}
}

func TestRunWithMemoryBudget(t *testing.T) {
	// A budget of one byte forces every run to disk; the output must be
	// identical to the unlimited sort.
	var rows strings.Builder
	rows.WriteString("name,score\n")
	for i := 0; i < 500; i++ {
		rows.WriteString(string(rune('a'+i%26)) + "name,")
		rows.WriteString(string(rune('0' + i%10)))
		rows.WriteString("\n")
	}
	path := writeTemp(t, rows.String())
	var unlimited, budgeted strings.Builder
	if err := run(path, "score:desc,name", 1, 0, "", "", nil, &unlimited); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "score:desc,name", 1, 1, "", "", nil, &budgeted); err != nil {
		t.Fatal(err)
	}
	if unlimited.String() != budgeted.String() {
		t.Fatal("budgeted sort output differs from unlimited")
	}
	if err := run(path, "score:desc", 1, -5, "", "", nil, &strings.Builder{}); err == nil {
		t.Fatal("negative -mem should error")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("/nonexistent.csv", "a", 1, 0, "", "", nil, &strings.Builder{}); err == nil {
		t.Fatal("missing file should error")
	}
	ragged := writeTemp(t, "a,b\n1\n")
	if err := run(ragged, "a", 1, 0, "", "", nil, &strings.Builder{}); err == nil {
		t.Fatal("ragged rows should error")
	}
	ok := writeTemp(t, "a\n1\n")
	if err := run(ok, "nope", 1, 0, "", "", nil, &strings.Builder{}); err == nil {
		t.Fatal("unknown key column should error")
	}
}
