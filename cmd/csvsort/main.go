// Command csvsort sorts a CSV file with the relational sorter: a small but
// real tool on top of the library's public pipeline (schema inference →
// columnar chunks → normalized-key sort → columnar scan → CSV out).
//
// Usage:
//
//	csvsort -by "city,score:desc,name:asc:nullslast" input.csv > sorted.csv
//
// Each -by term is column[:asc|:desc][:nullsfirst|:nullslast]. The first
// line must be a header. Column types are inferred: a column whose non-empty
// values all parse as integers becomes BIGINT, else DOUBLE if they parse as
// floats, else VARCHAR. Empty fields are NULL.
//
// The -trace flag writes the sort's phase timeline as Chrome trace_event
// JSON (open in chrome://tracing or Perfetto); -metrics dumps the sort's
// counters in Prometheus text format ("-" for stderr). The -mem flag
// budgets the sort's resident bytes: over budget it degrades by spilling
// runs to a temp directory and streaming the final merge, instead of
// growing without bound.
//
// The -serve flag mounts the live observability plane while the sort runs:
// /debug/rowsort/ shows the sort's per-phase progress and ETA, /metrics its
// Prometheus counters. The server stays up after the sort completes (the
// finished snapshot stays queryable) until interrupted.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"rowsort/internal/core"
	"rowsort/internal/obs"
	"rowsort/internal/vector"
)

func main() {
	by := flag.String("by", "", "comma-separated sort keys: col[:asc|:desc][:nullsfirst|:nullslast]")
	threads := flag.Int("threads", 0, "sort threads (0 = GOMAXPROCS)")
	memLimit := flag.Int64("mem", 0, "memory budget in bytes for the sort (0 = unlimited); over budget the sort spills adaptively to a temp directory")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file")
	metrics := flag.String("metrics", "", "write Prometheus-text sort metrics to this file (\"-\" = stderr)")
	serve := flag.String("serve", "", "serve the live observability plane (/debug/rowsort/, /metrics) on this address while sorting, e.g. :6060; stays up after the sort until interrupted")
	flag.Parse()

	if *by == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: csvsort -by \"col[:desc][:nullslast],...\" input.csv")
		os.Exit(2)
	}

	var reg *obs.Registry
	if *serve != "" {
		reg = obs.NewRegistry(obs.DefaultKeepDone)
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			fmt.Fprintf(os.Stderr, "csvsort: -serve: %v\n", err)
			os.Exit(1)
		}
		srv := &http.Server{Handler: reg.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "csvsort: serving http://%s/debug/rowsort/ and /metrics\n", ln.Addr())
	}

	if err := run(flag.Arg(0), *by, *threads, *memLimit, *traceFile, *metrics, reg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "csvsort: %v\n", err)
		os.Exit(1)
	}

	if *serve != "" {
		fmt.Fprintln(os.Stderr, "csvsort: sort done; still serving the finished snapshot (interrupt to exit)")
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		<-ctx.Done()
	}
}

func run(path, by string, threads int, memLimit int64, traceFile, metrics string, reg *obs.Registry, out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	header, records, err := readCSV(f)
	if err != nil {
		return err
	}
	schema, table, err := buildTable(header, records)
	if err != nil {
		return err
	}
	keys, err := parseKeys(by, schema)
	if err != nil {
		return err
	}
	opt := core.Options{Threads: threads, MemoryLimit: memLimit, Registry: reg, RunLabel: "csvsort"}
	if traceFile != "" || metrics != "" || reg != nil {
		opt.Telemetry = obs.NewRecorder()
	}
	sorted, stats, err := core.SortTableStats(table, keys, opt)
	if err != nil {
		return err
	}
	if traceFile != "" {
		if err := writeFile(traceFile, opt.Telemetry.WriteTrace); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	if metrics != "" {
		if metrics == "-" {
			if err := stats.WritePrometheus(os.Stderr); err != nil {
				return err
			}
		} else if err := writeFile(metrics, stats.WritePrometheus); err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	}
	return writeCSV(out, header, sorted)
}

func writeFile(path string, emit func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readCSV(r io.Reader) (header []string, records [][]string, err error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	header, err = cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("reading header: %w", err)
	}
	records, err = cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("reading rows: %w", err)
	}
	return header, records, nil
}

// inferType picks the narrowest type that fits every non-empty value.
func inferType(records [][]string, col int) vector.Type {
	isInt, isFloat, any := true, true, false
	for _, rec := range records {
		v := rec[col]
		if v == "" {
			continue
		}
		any = true
		if isInt {
			if _, err := strconv.ParseInt(v, 10, 64); err != nil {
				isInt = false
			}
		}
		if !isInt && isFloat {
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				isFloat = false
			}
		}
		if !isInt && !isFloat {
			return vector.Varchar
		}
	}
	switch {
	case !any:
		return vector.Varchar
	case isInt:
		return vector.Int64
	case isFloat:
		return vector.Float64
	default:
		return vector.Varchar
	}
}

func buildTable(header []string, records [][]string) (vector.Schema, *vector.Table, error) {
	for i, rec := range records {
		if len(rec) != len(header) {
			return nil, nil, fmt.Errorf("row %d has %d fields, header has %d", i+2, len(rec), len(header))
		}
	}
	schema := make(vector.Schema, len(header))
	for c, name := range header {
		schema[c] = vector.Column{Name: name, Type: inferType(records, c)}
	}
	table := vector.NewTable(schema)
	for start := 0; start < len(records); start += vector.DefaultVectorSize {
		count := min(vector.DefaultVectorSize, len(records)-start)
		chunk := vector.NewChunk(schema, count)
		for r := start; r < start+count; r++ {
			for c := range schema {
				v := records[r][c]
				if v == "" {
					chunk.Vectors[c].AppendNull()
					continue
				}
				switch schema[c].Type {
				case vector.Int64:
					x, _ := strconv.ParseInt(v, 10, 64)
					chunk.Vectors[c].AppendInt64(x)
				case vector.Float64:
					x, _ := strconv.ParseFloat(v, 64)
					chunk.Vectors[c].AppendFloat64(x)
				default:
					chunk.Vectors[c].AppendString(v)
				}
			}
		}
		if err := table.AppendChunk(chunk); err != nil {
			return nil, nil, err
		}
	}
	return schema, table, nil
}

func parseKeys(by string, schema vector.Schema) ([]core.SortColumn, error) {
	var keys []core.SortColumn
	for _, term := range strings.Split(by, ",") {
		parts := strings.Split(strings.TrimSpace(term), ":")
		if parts[0] == "" {
			return nil, fmt.Errorf("empty sort key in %q", by)
		}
		col := schema.IndexOf(parts[0])
		if col < 0 {
			return nil, fmt.Errorf("unknown column %q", parts[0])
		}
		k := core.SortColumn{Column: col}
		for _, mod := range parts[1:] {
			switch strings.ToLower(mod) {
			case "asc":
			case "desc":
				k.Descending = true
			case "nullsfirst":
			case "nullslast":
				k.NullsLast = true
			default:
				return nil, fmt.Errorf("unknown modifier %q in %q", mod, term)
			}
		}
		keys = append(keys, k)
	}
	return keys, nil
}

func writeCSV(w io.Writer, header []string, t *vector.Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for _, chunk := range t.Chunks {
		for r := 0; r < chunk.Len(); r++ {
			for c, v := range chunk.Vectors {
				val := v.Value(r)
				if val == nil {
					rec[c] = ""
					continue
				}
				switch x := val.(type) {
				case int64:
					rec[c] = strconv.FormatInt(x, 10)
				case float64:
					rec[c] = strconv.FormatFloat(x, 'g', -1, 64)
				default:
					rec[c] = fmt.Sprintf("%v", x)
				}
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
