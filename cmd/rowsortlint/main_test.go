package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runLint drives run() in-process against the lintmod fixture module.
func runLint(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestCleanPackageExitsZero(t *testing.T) {
	code, out, errOut := runLint(t, "-C", "testdata/lintmod", "./clean/...")
	if code != 0 {
		t.Fatalf("exit %d, stdout %q, stderr %q", code, out, errOut)
	}
	if out != "" {
		t.Fatalf("clean run must print nothing, got %q", out)
	}
}

func TestFindingsExitOne(t *testing.T) {
	code, out, _ := runLint(t, "-C", "testdata/lintmod", "./...")
	if code != 1 {
		t.Fatalf("findings must exit 1, got %d (stdout %q)", code, out)
	}
	if !strings.Contains(out, "chanbug.go") || !strings.Contains(out, "chanclose") {
		t.Fatalf("text output must name file and analyzer, got %q", out)
	}
}

func TestJSONShape(t *testing.T) {
	code, out, _ := runLint(t, "-C", "testdata/lintmod", "-json", "./...")
	if code != 1 {
		t.Fatalf("findings must exit 1, got %d", code)
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
	}
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("-json output must be a diagnostic array: %v\n%s", err, out)
	}
	if len(diags) == 0 {
		t.Fatal("expected at least one diagnostic")
	}
	for _, d := range diags {
		if d.Analyzer != "chanclose" {
			t.Fatalf("unexpected analyzer %q in %+v", d.Analyzer, d)
		}
		if d.Message == "" || d.File == "" || d.Line == 0 || d.Col == 0 {
			t.Fatalf("incomplete diagnostic %+v", d)
		}
		if filepath.Base(d.File) != "chanbug.go" {
			t.Fatalf("finding in unexpected file %q", d.File)
		}
	}
}

func TestOnlyFilters(t *testing.T) {
	// The fixture's only finding is chanclose's; filtering to another
	// analyzer must come back clean.
	code, out, _ := runLint(t, "-C", "testdata/lintmod", "-only", "hotpathalloc", "./...")
	if code != 0 || out != "" {
		t.Fatalf("filtered run must be clean, got exit %d stdout %q", code, out)
	}
	code, _, _ = runLint(t, "-C", "testdata/lintmod", "-only", "chanclose", "./...")
	if code != 1 {
		t.Fatalf("-only chanclose must still find the bug, got exit %d", code)
	}
}

func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	code, _, errOut := runLint(t, "-C", "testdata/lintmod", "-only", "nosuch", "./...")
	if code != 2 {
		t.Fatalf("unknown analyzer must exit 2, got %d", code)
	}
	if !strings.Contains(errOut, "unknown analyzer") {
		t.Fatalf("stderr must explain the failure, got %q", errOut)
	}
}

func TestLoadFailureExitsTwo(t *testing.T) {
	code, _, errOut := runLint(t, "-C", "testdata/nosuchdir", "./...")
	if code != 2 {
		t.Fatalf("load failure must exit 2, got %d (stderr %q)", code, errOut)
	}
}

func TestListNamesEveryAnalyzer(t *testing.T) {
	code, out, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("-list must exit 0, got %d", code)
	}
	for _, a := range suite {
		if !strings.Contains(out, a.Name) {
			t.Fatalf("-list output missing %s:\n%s", a.Name, out)
		}
	}
}

func TestSuppressionCounts(t *testing.T) {
	code, out, _ := runLint(t, "-C", "testdata/lintmod", "-suppressions", "./...")
	if code != 0 {
		t.Fatalf("-suppressions must exit 0, got %d", code)
	}
	counts := make(map[string]int)
	if err := json.Unmarshal([]byte(out), &counts); err != nil {
		t.Fatalf("-suppressions output must be a JSON object: %v\n%s", err, out)
	}
	if counts["chanclose"] != 1 {
		t.Fatalf("fixture has one justified chanclose suppression, got %v", counts)
	}
}

// writeBudget drops a budget file in a temp dir and returns its path.
func writeBudget(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "budget.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBudgetHoldsAndGrows(t *testing.T) {
	equal := writeBudget(t, `{"chanclose": 1}`)
	code, out, _ := runLint(t, "-C", "testdata/lintmod", "-budget", equal, "./...")
	if code != 0 {
		t.Fatalf("matching budget must pass, got exit %d stdout %q", code, out)
	}

	grown := writeBudget(t, `{"chanclose": 0}`)
	code, out, _ = runLint(t, "-C", "testdata/lintmod", "-budget", grown, "./...")
	if code != 1 {
		t.Fatalf("exceeded budget must exit 1, got %d", code)
	}
	if !strings.Contains(out, "budget exceeded") {
		t.Fatalf("growth must be called out, got %q", out)
	}

	slack := writeBudget(t, `{"chanclose": 3}`)
	code, out, _ = runLint(t, "-C", "testdata/lintmod", "-budget", slack, "./...")
	if code != 0 {
		t.Fatalf("slack budget must pass, got %d", code)
	}
	if !strings.Contains(out, "budget slack") {
		t.Fatalf("slack must invite a ratchet, got %q", out)
	}
}

func TestBudgetFileMissingExitsTwo(t *testing.T) {
	code, _, errOut := runLint(t, "-C", "testdata/lintmod", "-budget", "no-such-budget.json", "./...")
	if code != 2 {
		t.Fatalf("missing budget file must exit 2, got %d (stderr %q)", code, errOut)
	}
}
