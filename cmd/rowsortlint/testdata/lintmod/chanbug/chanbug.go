// Package chanbug contains a deliberate chanclose finding for the CLI
// golden test.
package chanbug

// DoubleClose closes the same channel twice.
func DoubleClose(ch chan int) {
	close(ch)
	close(ch)
}
