// Package clean lints clean: its one finding carries a justified
// suppression, which the CLI golden test counts through -suppressions.
package clean

// Add is unremarkable on purpose.
func Add(a, b int) int { return a + b }

// Shutdown double-closes, justified for the golden test.
func Shutdown(ch chan int) {
	close(ch)
	//rowsort:allow chanclose golden-test fixture for the suppression counter
	close(ch)
}
