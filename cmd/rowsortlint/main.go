// Command rowsortlint runs the module's static-analysis suite: the
// analyzers under internal/analysis/analyzers, which machine-check the
// sort pipeline's un-typeable invariants (byte-comparable key encodings,
// pure comparators, allocation-free hot loops, atomic stats access, and
// tracked spill-file removal). See DESIGN.md's "Static analysis" section
// for what each analyzer enforces and how to suppress a finding with
// //rowsort:allow.
//
// Usage:
//
//	rowsortlint [-json] [-only names] [packages]
//
// Packages default to ./... relative to the current directory. Exit code 0
// means no findings, 1 means findings, 2 means the load itself failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rowsort/internal/analysis"
	"rowsort/internal/analysis/analyzers/atomicfield"
	"rowsort/internal/analysis/analyzers/deprecated"
	"rowsort/internal/analysis/analyzers/hotpathalloc"
	"rowsort/internal/analysis/analyzers/keyorder"
	"rowsort/internal/analysis/analyzers/memacct"
	"rowsort/internal/analysis/analyzers/purecmp"
	"rowsort/internal/analysis/analyzers/spillclose"
)

// suite is every analyzer rowsortlint knows, in reporting order.
var suite = []*analysis.Analyzer{
	atomicfield.Analyzer,
	deprecated.Analyzer,
	hotpathalloc.Analyzer,
	keyorder.Analyzer,
	memacct.Analyzer,
	purecmp.Analyzer,
	spillclose.Analyzer,
}

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rowsortlint: %v\n", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	u, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rowsortlint: %v\n", err)
		os.Exit(2)
	}

	diags := analysis.Run(u, analyzers)
	if *jsonOut {
		err = analysis.WriteJSON(os.Stdout, diags)
	} else {
		err = analysis.WriteText(os.Stdout, diags)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rowsortlint: %v\n", err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -only flag against the suite.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return suite, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
		}
		picked = append(picked, a)
	}
	return picked, nil
}
