// Command rowsortlint runs the module's static-analysis suite: the
// analyzers under internal/analysis/analyzers, which machine-check the
// sort pipeline's un-typeable invariants (byte-comparable key encodings,
// pure comparators, allocation-free hot loops, atomic stats access,
// tracked spill-file removal, and the concurrency lifecycle of pipeline
// goroutines). See DESIGN.md's "Static analysis" section for what each
// analyzer enforces and how to suppress a finding with //rowsort:allow.
//
// Usage:
//
//	rowsortlint [-C dir] [-json] [-only names] [packages]
//	rowsortlint -list
//	rowsortlint [-C dir] -suppressions [packages]
//	rowsortlint [-C dir] -budget file [packages]
//
// Packages default to ./... relative to -C (default: the current
// directory). Exit code 0 means no findings, 1 means findings (or a grown
// suppression budget), 2 means the load itself failed.
//
// -suppressions prints the justified //rowsort:allow counts per analyzer
// as JSON. -budget compares those counts against a committed baseline
// file: any analyzer exceeding its budgeted count fails, so suppressions
// can be spent down but never accumulate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"rowsort/internal/analysis"
	"rowsort/internal/analysis/analyzers"
)

// suite is every analyzer rowsortlint knows, in reporting order.
var suite = analyzers.Suite

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected, so the golden CLI test can
// drive it in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rowsortlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "run as if launched from this directory")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	suppressions := fs.Bool("suppressions", false, "print justified //rowsort:allow counts per analyzer as JSON and exit")
	budget := fs.String("budget", "", "compare suppression counts against this baseline file; fail on growth")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintf(stderr, "rowsortlint: %v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	u, err := analysis.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "rowsortlint: %v\n", err)
		return 2
	}

	if *suppressions {
		return writeSuppressions(stdout, stderr, u)
	}
	if *budget != "" {
		return checkBudget(stdout, stderr, u, *budget)
	}

	diags := analysis.Run(u, selected)
	if *jsonOut {
		err = analysis.WriteJSON(stdout, diags)
	} else {
		err = analysis.WriteText(stdout, diags)
	}
	if err != nil {
		fmt.Fprintf(stderr, "rowsortlint: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -only flag against the suite.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return suite, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
		}
		picked = append(picked, a)
	}
	return picked, nil
}

// writeSuppressions prints the per-analyzer justified suppression counts as
// deterministic JSON (sorted keys, the budget file's format).
func writeSuppressions(stdout, stderr io.Writer, u *analysis.Universe) int {
	if err := writeCounts(stdout, u.SuppressionCounts()); err != nil {
		fmt.Fprintf(stderr, "rowsortlint: %v\n", err)
		return 2
	}
	return 0
}

// checkBudget enforces the suppression ratchet: current counts may not
// exceed the committed baseline for any analyzer. Spending down is
// reported so the baseline can be tightened.
func checkBudget(stdout, stderr io.Writer, u *analysis.Universe, path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "rowsortlint: reading budget: %v\n", err)
		return 2
	}
	budget := make(map[string]int)
	if err := json.Unmarshal(data, &budget); err != nil {
		fmt.Fprintf(stderr, "rowsortlint: parsing budget %s: %v\n", path, err)
		return 2
	}
	counts := u.SuppressionCounts()

	names := make(map[string]bool)
	for name := range budget {
		names[name] = true
	}
	for name := range counts {
		names[name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	grew := false
	for _, name := range sorted {
		have, want := counts[name], budget[name]
		switch {
		case have > want:
			grew = true
			fmt.Fprintf(stdout, "budget exceeded: %s has %d suppressions, budget is %d — fix the finding or justify raising the budget\n", name, have, want)
		case have < want:
			fmt.Fprintf(stdout, "budget slack: %s has %d suppressions, budget is %d — ratchet %s down in %s\n", name, have, want, name, path)
		}
	}
	if grew {
		return 1
	}
	return 0
}

// writeCounts emits a counts map as stable, human-diffable JSON.
func writeCounts(w io.Writer, counts map[string]int) error {
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	if _, err := io.WriteString(w, "{\n"); err != nil {
		return err
	}
	for i, name := range names {
		sep := ","
		if i == len(names)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "  %q: %d%s\n", name, counts[name], sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}
