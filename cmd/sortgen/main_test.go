package main

import (
	"encoding/csv"
	"strings"
	"testing"
)

func generate(t *testing.T, kind string, rows, cols int) [][]string {
	t.Helper()
	var sb strings.Builder
	if err := run(&sb, kind, rows, cols, 0.5, 10, 1); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestWorkloadShapes(t *testing.T) {
	cases := []struct {
		kind string
		cols int
	}{
		{"catalog_sales", 5},
		{"customer", 6},
		{"random", 3},
		{"correlated", 3},
		{"integers", 1},
		{"floats", 1},
	}
	for _, c := range cases {
		recs := generate(t, c.kind, 50, 3)
		if len(recs) != 51 { // header + rows
			t.Fatalf("%s: %d records", c.kind, len(recs))
		}
		if len(recs[0]) != c.cols {
			t.Fatalf("%s: %d columns, want %d", c.kind, len(recs[0]), c.cols)
		}
	}
}

func TestDeterministicInSeed(t *testing.T) {
	a := generate(t, "customer", 20, 0)
	b := generate(t, "customer", 20, 0)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed should reproduce identical output")
			}
		}
	}
}

func TestNULLsAreEmptyFields(t *testing.T) {
	recs := generate(t, "catalog_sales", 2000, 0)
	empties := 0
	for _, r := range recs[1:] {
		for _, f := range r[:3] { // FK columns carry NULLs
			if f == "" {
				empties++
			}
		}
	}
	if empties == 0 {
		t.Fatal("expected some NULL (empty) FK fields")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "", 10, 1, 0.5, 1, 1); err == nil {
		t.Fatal("missing workload should error")
	}
	if err := run(&sb, "bogus", 10, 1, 0.5, 1, 1); err == nil {
		t.Fatal("unknown workload should error")
	}
	if err := run(&sb, "random", -1, 1, 0.5, 1, 1); err == nil {
		t.Fatal("negative rows should error")
	}
}
