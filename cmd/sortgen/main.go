// Command sortgen generates the repository's benchmark workloads as CSV,
// for feeding csvsort or external systems.
//
// Usage:
//
//	sortgen -workload catalog_sales -rows 100000 > catalog_sales.csv
//	sortgen -workload customer -rows 50000 -seed 7 > customer.csv
//	sortgen -workload random -rows 1000000 -cols 2 > random.csv
//	sortgen -workload correlated -p 0.5 -rows 100000 -cols 4 > corr.csv
//	sortgen -workload integers -rows 1000000 > shuffled.csv
//	sortgen -workload floats -rows 1000000 > floats.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"rowsort/internal/vector"
	"rowsort/internal/workload"
)

func main() {
	var (
		kind = flag.String("workload", "", "catalog_sales, customer, random, correlated, integers or floats")
		rows = flag.Int("rows", 100_000, "number of rows")
		cols = flag.Int("cols", 4, "key columns (random/correlated)")
		p    = flag.Float64("p", 0.5, "correlation probability (correlated)")
		sf   = flag.Int("sf", 10, "TPC-DS scale factor for domain sizes (catalog_sales)")
		seed = flag.Uint64("seed", 42, "generation seed")
	)
	flag.Parse()

	if err := run(os.Stdout, *kind, *rows, *cols, *p, *sf, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "sortgen: %v\n", err)
		os.Exit(2)
	}
}

func run(w io.Writer, kind string, rows, cols int, p float64, sf int, seed uint64) error {
	if rows < 0 {
		return fmt.Errorf("negative row count")
	}
	switch kind {
	case "catalog_sales":
		return writeTable(w, workload.CatalogSales(rows, sf, seed))
	case "customer":
		return writeTable(w, workload.Customer(rows, seed))
	case "random":
		return writeTable(w, workload.UintColumnsTable(
			workload.Dist{Random: true}.Generate(rows, cols, seed)))
	case "correlated":
		return writeTable(w, workload.UintColumnsTable(
			workload.Dist{P: p}.Generate(rows, cols, seed)))
	case "integers":
		vals := workload.ShuffledInt32s(rows, seed)
		tbl, err := vector.TableFromColumns(
			vector.Schema{{Name: "v", Type: vector.Int32}}, vector.FromInt32(vals))
		if err != nil {
			return err
		}
		return writeTable(w, tbl)
	case "floats":
		vals := workload.UniformFloat32s(rows, seed)
		tbl, err := vector.TableFromColumns(
			vector.Schema{{Name: "v", Type: vector.Float32}}, vector.FromFloat32(vals))
		if err != nil {
			return err
		}
		return writeTable(w, tbl)
	case "":
		return fmt.Errorf("missing -workload (catalog_sales, customer, random, correlated, integers, floats)")
	default:
		return fmt.Errorf("unknown workload %q", kind)
	}
}

func writeTable(w io.Writer, t *vector.Table) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Schema))
	for i, c := range t.Schema {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for _, chunk := range t.Chunks {
		for r := 0; r < chunk.Len(); r++ {
			for c, v := range chunk.Vectors {
				rec[c] = formatValue(v.Value(r))
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatValue(v any) string {
	switch x := v.(type) {
	case nil:
		return ""
	case int32:
		return strconv.FormatInt(int64(x), 10)
	case uint32:
		return strconv.FormatUint(uint64(x), 10)
	case float32:
		return strconv.FormatFloat(float64(x), 'g', -1, 32)
	case string:
		return x
	default:
		return fmt.Sprintf("%v", x)
	}
}
